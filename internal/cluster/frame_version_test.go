package cluster

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"stcam/internal/wire"
)

// encodeV1Frame builds a frame in the original (pre-trace) layout by hand,
// so the compatibility tests do not depend on the current encoder.
func encodeV1Frame(t testing.TB, reqID uint64, flags byte, payload any) []byte {
	t.Helper()
	kind := wire.KindOf(payload)
	body, err := wire.Marshal(kind, payload)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 4+rpcHeaderLen, 4+rpcHeaderLen+len(body))
	binary.BigEndian.PutUint32(frame[0:4], uint32(rpcHeaderLen+len(body)))
	binary.BigEndian.PutUint64(frame[4:12], reqID)
	frame[12] = flags
	frame[13] = byte(kind)
	return append(frame, body...)
}

// TestFrameV1Decode: a v1 frame (no trace field) must decode on the current
// reader as an untraced call — old senders keep working.
func TestFrameV1Decode(t *testing.T) {
	msg := &wire.Heartbeat{Node: "w7", Seq: 3, Load: 0.25, Stored: 10, Cameras: 2}
	old := encodeV1Frame(t, 99, 0, msg)
	hdr, env, err := readRPCFrame(bytes.NewReader(old))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.reqID != 99 || hdr.flags != 0 || hdr.traceID != 0 || hdr.pri != PriorityNone || hdr.tenant != "" {
		t.Fatalf("header = %+v, want reqID 99, zero flags/trace/QoS", hdr)
	}
	if !reflect.DeepEqual(env.Payload, msg) {
		t.Fatalf("payload mismatch: %#v", env.Payload)
	}
}

// TestFrameUntracedIsV1: an untraced send must emit bytes identical to the
// v1 layout — new senders stay readable by old receivers.
func TestFrameUntracedIsV1(t *testing.T) {
	msg := &wire.TrackStop{TrackID: 11}
	got, err := appendRPCFrame(nil, 5, flagResponse, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeV1Frame(t, 5, flagResponse, msg)
	if !bytes.Equal(got, want) {
		t.Fatalf("untraced frame differs from v1 layout:\n got  %x\n want %x", got, want)
	}
}

// TestQuickFrameHeaderRoundTrip is the versioned-header property: for any
// (reqID, flags, traceID), encode→decode returns the same header, with the
// trace bit tracking whether a trace ID rode along.
func TestQuickFrameHeaderRoundTrip(t *testing.T) {
	prop := func(reqID uint64, flags byte, traceID uint64, seq uint64) bool {
		flags &^= flagTrace | flagFormat | flagQoS // encoder owns these bits
		msg := &wire.Heartbeat{Node: "w1", Seq: seq}
		frame, err := appendRPCFrame(nil, reqID, flags, traceID, msg)
		if err != nil {
			return false
		}
		hdr, env, err := readRPCFrame(bytes.NewReader(frame))
		if err != nil {
			return false
		}
		wantFlags := flags
		if traceID != 0 {
			wantFlags |= flagTrace
		}
		return hdr.reqID == reqID && hdr.flags == wantFlags && hdr.traceID == traceID &&
			reflect.DeepEqual(env.Payload, msg)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFrameTraceTruncated: flagTrace with fewer than 8 payload bytes must
// error, not panic or misparse.
func TestFrameTraceTruncated(t *testing.T) {
	frame, err := appendRPCFrame(nil, 1, 0, 0xabcdef, &wire.TrackStop{TrackID: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the length to claim the frame ends inside the trace field.
	cut := frame[:4+rpcHeaderLen+4]
	trunc := append([]byte(nil), cut...)
	binary.BigEndian.PutUint32(trunc[0:4], uint32(len(trunc)-4))
	if _, _, err := readRPCFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace field decoded without error")
	}
}

// TestFrameQoSRoundTrip: priority and tenant tags survive the frame, both
// alone and combined with a trace ID, and untagged frames carry no QoS field.
func TestFrameQoSRoundTrip(t *testing.T) {
	msg := &wire.CountQuery{QueryID: 4}
	cases := []struct {
		traceID uint64
		pri     Priority
		tenant  string
	}{
		{0, PriorityBackground, ""},
		{0, PriorityNone, "acme"},
		{0, PriorityInteractive, "acme"},
		{0xfeed, PriorityControl, "tenant-with-a-longer-name"},
	}
	for _, tc := range cases {
		frame, err := appendRPCFrameFull(nil, wire.FormatV1, 7, 0, tc.traceID, tc.pri, tc.tenant, msg)
		if err != nil {
			t.Fatal(err)
		}
		hdr, env, err := readRPCFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("case %+v: %v", tc, err)
		}
		if hdr.flags&flagQoS == 0 {
			t.Fatalf("case %+v: flagQoS not set", tc)
		}
		if hdr.reqID != 7 || hdr.traceID != tc.traceID || hdr.pri != tc.pri || hdr.tenant != tc.tenant {
			t.Fatalf("case %+v: header round trip changed: %+v", tc, hdr)
		}
		if !reflect.DeepEqual(env.Payload, msg) {
			t.Fatalf("case %+v: payload mismatch: %#v", tc, env.Payload)
		}
	}
}

// TestFrameQoSUntaggedIsV1: a call with no priority and no tenant must emit
// bytes identical to the pre-QoS layout — old receivers keep decoding new
// senders.
func TestFrameQoSUntaggedIsV1(t *testing.T) {
	msg := &wire.TrackStop{TrackID: 11}
	got, err := appendRPCFrameFull(nil, wire.FormatV1, 5, 0, 0, PriorityNone, "", msg)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeV1Frame(t, 5, 0, msg)
	if !bytes.Equal(got, want) {
		t.Fatalf("untagged frame differs from v1 layout:\n got  %x\n want %x", got, want)
	}
}

// TestFrameQoSTruncated: flagQoS with a tenant length pointing past the end
// of the frame must error, not panic or misparse.
func TestFrameQoSTruncated(t *testing.T) {
	frame, err := appendRPCFrameFull(nil, wire.FormatV1, 1, 0, 0, PriorityBackground, "acme", &wire.TrackStop{TrackID: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the tenant bytes: [pri][len=4]["ac..."] with only 2 tenant
	// bytes present.
	cut := frame[:4+rpcHeaderLen+2+2]
	trunc := append([]byte(nil), cut...)
	binary.BigEndian.PutUint32(trunc[0:4], uint32(len(trunc)-4))
	if _, _, err := readRPCFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated QoS field decoded without error")
	}
	// And a tenant over the one-byte length bound must be refused at encode.
	long := string(make([]byte, maxTenantLen+1))
	if _, err := appendRPCFrameFull(nil, wire.FormatV1, 1, 0, 0, PriorityNone, long, &wire.TrackStop{TrackID: 2}); err == nil {
		t.Fatal("oversized tenant encoded without error")
	}
}
