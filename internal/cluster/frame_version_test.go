package cluster

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"stcam/internal/wire"
)

// encodeV1Frame builds a frame in the original (pre-trace) layout by hand,
// so the compatibility tests do not depend on the current encoder.
func encodeV1Frame(t testing.TB, reqID uint64, flags byte, payload any) []byte {
	t.Helper()
	kind := wire.KindOf(payload)
	body, err := wire.Marshal(kind, payload)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 4+rpcHeaderLen, 4+rpcHeaderLen+len(body))
	binary.BigEndian.PutUint32(frame[0:4], uint32(rpcHeaderLen+len(body)))
	binary.BigEndian.PutUint64(frame[4:12], reqID)
	frame[12] = flags
	frame[13] = byte(kind)
	return append(frame, body...)
}

// TestFrameV1Decode: a v1 frame (no trace field) must decode on the current
// reader as an untraced call — old senders keep working.
func TestFrameV1Decode(t *testing.T) {
	msg := &wire.Heartbeat{Node: "w7", Seq: 3, Load: 0.25, Stored: 10, Cameras: 2}
	old := encodeV1Frame(t, 99, 0, msg)
	reqID, flags, traceID, env, err := readRPCFrame(bytes.NewReader(old))
	if err != nil {
		t.Fatal(err)
	}
	if reqID != 99 || flags != 0 || traceID != 0 {
		t.Fatalf("header = (%d, %d, %d), want (99, 0, 0)", reqID, flags, traceID)
	}
	if !reflect.DeepEqual(env.Payload, msg) {
		t.Fatalf("payload mismatch: %#v", env.Payload)
	}
}

// TestFrameUntracedIsV1: an untraced send must emit bytes identical to the
// v1 layout — new senders stay readable by old receivers.
func TestFrameUntracedIsV1(t *testing.T) {
	msg := &wire.TrackStop{TrackID: 11}
	got, err := appendRPCFrame(nil, 5, flagResponse, 0, msg)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeV1Frame(t, 5, flagResponse, msg)
	if !bytes.Equal(got, want) {
		t.Fatalf("untraced frame differs from v1 layout:\n got  %x\n want %x", got, want)
	}
}

// TestQuickFrameHeaderRoundTrip is the versioned-header property: for any
// (reqID, flags, traceID), encode→decode returns the same header, with the
// trace bit tracking whether a trace ID rode along.
func TestQuickFrameHeaderRoundTrip(t *testing.T) {
	prop := func(reqID uint64, flags byte, traceID uint64, seq uint64) bool {
		flags &^= flagTrace | flagFormat // encoder owns these bits
		msg := &wire.Heartbeat{Node: "w1", Seq: seq}
		frame, err := appendRPCFrame(nil, reqID, flags, traceID, msg)
		if err != nil {
			return false
		}
		reqID2, flags2, traceID2, env, err := readRPCFrame(bytes.NewReader(frame))
		if err != nil {
			return false
		}
		wantFlags := flags
		if traceID != 0 {
			wantFlags |= flagTrace
		}
		return reqID2 == reqID && flags2 == wantFlags && traceID2 == traceID &&
			reflect.DeepEqual(env.Payload, msg)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFrameTraceTruncated: flagTrace with fewer than 8 payload bytes must
// error, not panic or misparse.
func TestFrameTraceTruncated(t *testing.T) {
	frame, err := appendRPCFrame(nil, 1, 0, 0xabcdef, &wire.TrackStop{TrackID: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the length to claim the frame ends inside the trace field.
	cut := frame[:4+rpcHeaderLen+4]
	trunc := append([]byte(nil), cut...)
	binary.BigEndian.PutUint32(trunc[0:4], uint32(len(trunc)-4))
	if _, _, _, _, err := readRPCFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace field decoded without error")
	}
}
