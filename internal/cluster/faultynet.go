package cluster

import (
	"hash/fnv"
	"sync"
	"time"
)

// FaultyNet coordinates fault injection across a whole cluster. The plain
// Faulty decorator is per-caller: its programs key on the destination only,
// so a single shared instance cannot sever one link without severing it for
// every node, and a partition installed on it is inherently one-way. A
// FaultyNet instead hands each node its own seeded Faulty view over one
// shared base transport, which makes symmetric partitions expressible:
// Partition(a, b) cuts a→b on a's view and b→a on b's view in one call.
//
// On top of that primitive sits a small scenario DSL — HealAfter schedules a
// repair, FlapEvery scripts a link that bounces — so chaos tests describe
// network weather declaratively instead of hand-rolling timer goroutines and
// both partition directions.
type FaultyNet struct {
	base Transport
	seed int64

	mu     sync.Mutex
	views  map[string]*Faulty
	timers []*time.Timer
	stops  []func()
	closed bool
}

// NewFaultyNet wraps a base transport. The seed fixes every view's fault
// sequence: view seeds are derived from it and the view's address, so a
// given (seed, topology) replays identically regardless of creation order.
func NewFaultyNet(base Transport, seed int64) *FaultyNet {
	return &FaultyNet{base: base, seed: seed, views: make(map[string]*Faulty)}
}

// View returns the fault-injecting transport for the node that serves on
// addr, creating it on first use. Build each node over its own view; faults
// installed via Partition/FlapEvery then affect exactly the links named.
func (n *FaultyNet) View(addr string) *Faulty {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.views[addr]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(addr)) //nolint:errcheck // fnv.Write never fails
		v = NewFaulty(n.base, n.seed^int64(h.Sum64()))
		n.views[addr] = v
	}
	return v
}

// Partition severs the link between the nodes serving on a and b in both
// directions. Other chaos programmed on either view is preserved.
func (n *FaultyNet) Partition(a, b string) {
	n.View(a).SetPartitioned(b, true)
	n.View(b).SetPartitioned(a, true)
}

// Heal restores the a↔b link in both directions.
func (n *FaultyNet) Heal(a, b string) {
	n.View(a).SetPartitioned(b, false)
	n.View(b).SetPartitioned(a, false)
}

// Isolate severs every currently-known link to and from addr — the
// one-call version of "this node fell off the network".
func (n *FaultyNet) Isolate(addr string) {
	for _, other := range n.addrs() {
		if other != addr {
			n.Partition(addr, other)
		}
	}
}

// Rejoin heals every currently-known link to and from addr.
func (n *FaultyNet) Rejoin(addr string) {
	for _, other := range n.addrs() {
		if other != addr {
			n.Heal(addr, other)
		}
	}
}

func (n *FaultyNet) addrs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.views))
	for a := range n.views {
		out = append(out, a)
	}
	return out
}

// HealAfter schedules Heal(a, b) once d elapses. The repair is cancelled if
// the net is closed first.
func (n *FaultyNet) HealAfter(d time.Duration, a, b string) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	t := time.AfterFunc(d, func() { n.Heal(a, b) })
	n.timers = append(n.timers, t)
	n.mu.Unlock()
}

// FlapEvery partitions a↔b immediately and toggles the link every period —
// a flapping cable. The returned stop function heals the link and ends the
// flapping; Close stops all flappers (leaving links in whatever state the
// last toggle set, as a real outage would).
func (n *FaultyNet) FlapEvery(period time.Duration, a, b string) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	halt := func() { once.Do(func() { close(done) }) }
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return func() {}
	}
	n.stops = append(n.stops, halt)
	n.mu.Unlock()

	n.Partition(a, b)
	go func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		cut := true
		for {
			select {
			case <-tick.C:
				cut = !cut
				if cut {
					n.Partition(a, b)
				} else {
					n.Heal(a, b)
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		halt()
		n.Heal(a, b)
	}
}

// InjectedTotal sums the injected-fault counters across every view.
func (n *FaultyNet) InjectedTotal() FaultStats {
	var out FaultStats
	n.mu.Lock()
	views := make([]*Faulty, 0, len(n.views))
	for _, v := range n.views {
		views = append(views, v)
	}
	n.mu.Unlock()
	for _, v := range views {
		s := v.Injected()
		out.Dropped += s.Dropped
		out.Hung += s.Hung
		out.Duplicated += s.Duplicated
		out.Delayed += s.Delayed
	}
	return out
}

// Close cancels scheduled scenario steps and closes the base transport.
func (n *FaultyNet) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	timers, stops := n.timers, n.stops
	n.timers, n.stops = nil, nil
	n.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	for _, halt := range stops {
		halt()
	}
	return n.base.Close()
}
