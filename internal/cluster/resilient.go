package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"stcam/internal/clock"
	"stcam/internal/metrics"
	"stcam/internal/wire"
)

// ErrCircuitOpen is returned for calls rejected by an open circuit breaker.
// It wraps ErrUnreachable so callers that degrade gracefully on dead peers
// (availability over completeness) treat a tripped breaker the same way.
var ErrCircuitOpen = fmt.Errorf("%w: circuit open", ErrUnreachable)

// Policy tunes the Resilient transport decorator: per-attempt deadlines,
// capped exponential backoff with seeded jitter, and a per-peer circuit
// breaker. The zero value selects the documented defaults; negative values
// disable the corresponding mechanism.
type Policy struct {
	// MaxAttempts is the total number of tries per Call, including the
	// first (default 3; 1 disables retries).
	MaxAttempts int
	// PerAttemptTimeout bounds each attempt. The whole Call additionally
	// respects the caller's context, which always wins (default 2s;
	// negative leaves attempts unbounded).
	PerAttemptTimeout time.Duration
	// BaseBackoff is the delay before the first retry (default 10ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 500ms).
	MaxBackoff time.Duration
	// Multiplier grows the backoff per retry (default 2; 1 = constant).
	Multiplier float64
	// Jitter is the fraction of each backoff randomized away, in [0, 1]:
	// the slept delay is backoff × (1 − Jitter×U[0,1)). Jitter draws come
	// from a Seed-ed RNG, so schedules are reproducible (default 0.2;
	// negative disables jitter).
	Jitter float64
	// Seed seeds the jitter RNG (default 1).
	Seed int64
	// FailureThreshold is the number of consecutive transport failures to
	// one peer that opens its circuit breaker (default 5; negative disables
	// circuit breaking).
	FailureThreshold int
	// Cooldown is how long an open breaker waits before admitting a single
	// half-open probe call (default 1s).
	Cooldown time.Duration
	// SlowCallThreshold, when positive, makes every Call whose total
	// duration (including retries and backoff) reaches it emit one
	// structured log line carrying the trace ID. Zero disables slow-call
	// logging.
	SlowCallThreshold time.Duration
}

// withDefaults resolves zero fields to the documented defaults.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.PerAttemptTimeout == 0 {
		p.PerAttemptTimeout = 2 * time.Second
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.Multiplier < 1 {
		p.Multiplier = 1
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.FailureThreshold == 0 {
		p.FailureThreshold = 5
	}
	if p.Cooldown == 0 {
		p.Cooldown = time.Second
	}
	return p
}

// backoff returns the pre-jitter delay before retry number `retry`
// (1-based): BaseBackoff × Multiplier^(retry−1), capped at MaxBackoff.
func (p Policy) backoff(retry int) time.Duration {
	d := float64(p.BaseBackoff)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxBackoff) {
			return p.MaxBackoff
		}
	}
	if d > float64(p.MaxBackoff) {
		return p.MaxBackoff
	}
	return time.Duration(d)
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one peer's circuit breaker: closed → open after
// FailureThreshold consecutive transport failures; open → half-open after
// the cooldown, admitting one probe call whose outcome closes or reopens
// the circuit.
type breaker struct {
	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	probing  bool
}

// allow reports whether a call may proceed now. In half-open state only one
// probe is in flight at a time.
func (b *breaker) allow(now time.Time, cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess closes the breaker.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// onFailure records a transport failure, returning true when this failure
// opened (or reopened) the breaker.
func (b *breaker) onFailure(now time.Time, threshold int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		return true
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= threshold {
		b.state = breakerOpen
		b.openedAt = now
		return true
	}
	return false
}

// trip forces the breaker open as if the threshold had just been crossed.
func (b *breaker) trip(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerOpen
	b.openedAt = now
	b.probing = false
}

// Resilient decorates any Transport with per-attempt deadlines, retry with
// capped seeded-jitter exponential backoff, and a per-peer circuit breaker.
//
// Error classification: transport failures (ErrUnreachable, per-attempt
// timeouts, broken connections) are retried and feed the breaker;
// *RemoteError means the remote handler answered — the link is healthy — so
// it is returned immediately and resets the breaker. The caller's context
// always wins: its cancellation or deadline ends the call without further
// attempts.
//
// Call semantics become at-least-once: an attempt that times out may have
// executed on the peer, and its retry executes again. Queries and the
// protocol's idempotent control messages (heartbeats, assignments keyed by
// epoch, track primes keyed by track ID) tolerate this; non-idempotent
// payloads need request-level dedup before enabling retries.
type Resilient struct {
	inner  Transport
	policy Policy
	reg    *metrics.Registry // optional mirror of the counters below

	now   func() time.Time                                 // injectable for tests
	sleep func(ctx context.Context, d time.Duration) error // injectable for tests

	rngMu sync.Mutex
	rng   *rand.Rand

	mu       sync.Mutex
	breakers map[string]*breaker

	retries      atomic.Int64
	timeouts     atomic.Int64
	breakerOpens atomic.Int64
	fastFails    atomic.Int64
	inFlight     atomic.Int64
	maxInFlight  atomic.Int64
}

var _ Transport = (*Resilient)(nil)

// ResilientOption configures a Resilient transport.
type ResilientOption func(*Resilient)

// WithRPCMetrics mirrors the resilience counters (rpc.retries,
// rpc.timeouts, rpc.breaker_opens, rpc.breaker_fastfails) into a metrics
// registry, alongside the TransportStats snapshot.
func WithRPCMetrics(reg *metrics.Registry) ResilientOption {
	return func(r *Resilient) { r.reg = reg }
}

// WithClock routes the resilience layer's backoff sleeps and breaker
// timestamps through the given clock, so seeded soaks drive retry timing
// from the same schedule as everything else. Defaults to clock.Wall.
func WithClock(c clock.Clock) ResilientOption {
	return func(r *Resilient) {
		if c == nil {
			return
		}
		r.now = c.Now
		r.sleep = c.Sleep
	}
}

// NewResilient wraps a transport with the given policy. Zero policy fields
// take the documented defaults; see Policy.
func NewResilient(inner Transport, p Policy, opts ...ResilientOption) *Resilient {
	r := &Resilient{
		inner:    inner,
		policy:   p.withDefaults(),
		now:      clock.Wall.Now,
		sleep:    clock.Wall.Sleep,
		breakers: make(map[string]*breaker),
	}
	r.rng = rand.New(rand.NewSource(r.policy.Seed))
	for _, o := range opts {
		o(r)
	}
	return r
}

// Policy returns the resolved policy in effect.
func (r *Resilient) Policy() Policy { return r.policy }

// Serve implements Transport.
func (r *Resilient) Serve(addr string, h Handler) (Server, error) { return r.inner.Serve(addr, h) }

// Close implements Transport.
func (r *Resilient) Close() error { return r.inner.Close() }

// Stats implements Transport: the inner transport's counters (Calls counts
// individual attempts) plus the resilience counters.
func (r *Resilient) Stats() TransportStats {
	s := r.inner.Stats()
	s.Retries = r.retries.Load()
	s.Timeouts = r.timeouts.Load()
	s.BreakerOpens = r.breakerOpens.Load()
	s.BreakerFastFails = r.fastFails.Load()
	s.InFlight = r.inFlight.Load()
	s.MaxInFlight = r.maxInFlight.Load()
	return s
}

// Call implements Transport with retries, deadlines, and circuit breaking.
// Every call carries a trace ID: the caller's (via WithTrace) or a fresh one,
// stamped into the context so the wire layer puts it on the frame. The whole
// call (attempts + backoff) is timed into a per-message-kind latency
// histogram when a metrics registry is attached, and calls slower than
// Policy.SlowCallThreshold log one line with the trace ID.
func (r *Resilient) Call(ctx context.Context, addr string, req any) (any, error) {
	traceID := TraceFrom(ctx)
	if traceID == 0 {
		traceID = NewTraceID()
		ctx = WithTrace(ctx, traceID)
	}
	start := r.now()
	resp, attempts, err := r.call(ctx, addr, traceID, req)
	elapsed := r.now().Sub(start)
	if r.reg != nil {
		r.reg.Histogram("rpc.call." + wire.KindOf(req).String()).Observe(elapsed) //lint:allow metricname per-kind latency series; cardinality bounded by the closed wire.MsgKind enum
	}
	if t := r.policy.SlowCallThreshold; t > 0 && elapsed >= t {
		log.Printf("cluster: slow rpc trace=%s kind=%v peer=%s attempts=%d elapsed=%v err=%v",
			TraceString(traceID), wire.KindOf(req), addr, attempts, elapsed, err)
	}
	return resp, err
}

// call runs the retry loop, returning the number of attempts made.
func (r *Resilient) call(ctx context.Context, addr string, traceID uint64, req any) (any, int, error) {
	// In-flight accounting: pipelined callers (the ingest path) read the
	// high-water mark to confirm their concurrency window actually opened.
	cur := r.inFlight.Add(1)
	for {
		max := r.maxInFlight.Load()
		if cur <= max || r.maxInFlight.CompareAndSwap(max, cur) {
			break
		}
	}
	defer r.inFlight.Add(-1)
	if r.reg != nil {
		r.reg.Gauge("rpc.inflight").Set(cur)
	}
	p := r.policy
	br := r.breakerFor(addr)
	var lastErr error
	for attempt := 1; ; attempt++ {
		if br != nil && !br.allow(r.now(), p.Cooldown) {
			r.fastFails.Add(1)
			r.count("rpc.breaker_fastfails")
			return nil, attempt - 1, fmt.Errorf("%w (%s)", ErrCircuitOpen, addr)
		}
		actx := ctx
		cancel := func() {}
		if p.PerAttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.PerAttemptTimeout)
		}
		resp, err := r.inner.Call(actx, addr, req)
		attemptTimedOut := errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil
		cancel()
		if err == nil {
			if br != nil {
				br.onSuccess()
			}
			return resp, attempt, nil
		}
		var re *RemoteError
		if errors.As(err, &re) {
			// The remote handler answered; the link is healthy and the
			// failure is semantic — retrying cannot change the answer.
			if br != nil {
				br.onSuccess()
			}
			return nil, attempt, err
		}
		// Per-attempt trace logging rides the slow-call switch so fault-heavy
		// test runs (which inject failures on purpose) stay quiet by default.
		if p.SlowCallThreshold > 0 {
			log.Printf("cluster: rpc attempt failed trace=%s kind=%v peer=%s attempt=%d/%d err=%v",
				TraceString(traceID), wire.KindOf(req), addr, attempt, p.MaxAttempts, err)
		}
		if attemptTimedOut {
			r.timeouts.Add(1)
			r.count("rpc.timeouts")
		}
		if br != nil && br.onFailure(r.now(), p.FailureThreshold) {
			r.breakerOpens.Add(1)
			r.count("rpc.breaker_opens")
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, attempt, lastErr // the caller gave up; no further attempts
		}
		if attempt >= p.MaxAttempts {
			return nil, attempt, lastErr
		}
		r.retries.Add(1)
		r.count("rpc.retries")
		if err := r.sleep(ctx, r.jittered(p.backoff(attempt))); err != nil {
			return nil, attempt, lastErr
		}
	}
}

// BreakerOpen reports whether addr's circuit is currently open (a call now
// would fail fast).
func (r *Resilient) BreakerOpen(addr string) bool {
	r.mu.Lock()
	b, ok := r.breakers[addr]
	r.mu.Unlock()
	if !ok {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen
}

// TripBreaker forces addr's breaker open now, as if FailureThreshold
// consecutive failures had just been observed — an operational drain hook
// and a test seam. No-op when circuit breaking is disabled.
func (r *Resilient) TripBreaker(addr string) {
	b := r.breakerFor(addr)
	if b == nil {
		return
	}
	b.trip(r.now())
	r.breakerOpens.Add(1)
	r.count("rpc.breaker_opens")
}

func (r *Resilient) breakerFor(addr string) *breaker {
	if r.policy.FailureThreshold < 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.breakers[addr]
	if !ok {
		b = &breaker{}
		r.breakers[addr] = b
	}
	return b
}

func (r *Resilient) jittered(d time.Duration) time.Duration {
	if r.policy.Jitter <= 0 || d <= 0 {
		return d
	}
	r.rngMu.Lock()
	u := r.rng.Float64()
	r.rngMu.Unlock()
	return d - time.Duration(float64(d)*r.policy.Jitter*u)
}

func (r *Resilient) count(name string) {
	if r.reg != nil {
		r.reg.Counter(name).Inc() //lint:allow metricname helper forwards literal keys from its call sites; no runtime data reaches the name
	}
}
