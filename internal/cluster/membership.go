package cluster

import (
	"sort"
	"sync"
	"time"

	"stcam/internal/wire"
)

// Member is the coordinator's view of one worker.
type Member struct {
	Node     wire.NodeID
	Addr     string
	Capacity int
	Alive    bool
	LastSeen time.Time
	Load     float64
	Stored   int
	Cameras  int
}

// Membership tracks worker liveness from heartbeats. The coordinator calls
// Sweep periodically; members silent longer than the timeout are marked dead
// and reported so camera reassignment can run. Safe for concurrent use.
type Membership struct {
	timeout time.Duration

	mu      sync.Mutex
	members map[wire.NodeID]*Member
}

// NewMembership returns a tracker that declares members dead after timeout
// without a heartbeat (minimum 1ms; default 5s when zero).
func NewMembership(timeout time.Duration) *Membership {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &Membership{
		timeout: timeout,
		members: make(map[wire.NodeID]*Member),
	}
}

// Register upserts a member from a registration message.
func (m *Membership) Register(reg *wire.Register, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cap := reg.Capacity
	if cap <= 0 {
		cap = 1
	}
	m.members[reg.Node] = &Member{
		Node:     reg.Node,
		Addr:     reg.Addr,
		Capacity: cap,
		Alive:    true,
		LastSeen: now,
	}
}

// Heartbeat refreshes a member's liveness and load report, returning false
// for unknown members (they must register first).
func (m *Membership) Heartbeat(hb *wire.Heartbeat, now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[hb.Node]
	if !ok {
		return false
	}
	mem.LastSeen = now
	mem.Alive = true
	mem.Load = hb.Load
	mem.Stored = hb.Stored
	mem.Cameras = hb.Cameras
	return true
}

// Refresh marks every member alive as of now. A standby coordinator promoted
// to leader calls this on takeover: its membership was seeded from replicated
// records whose apply times predate the failover, and without a refresh the
// first sweep would declare the whole (healthy) fleet dead before a single
// heartbeat had a chance to arrive.
func (m *Membership) Refresh(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mem := range m.members {
		mem.Alive = true
		mem.LastSeen = now
	}
}

// Remove drops a member entirely (graceful shutdown).
func (m *Membership) Remove(node wire.NodeID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.members[node]; !ok {
		return false
	}
	delete(m.members, node)
	return true
}

// Sweep marks members silent past the timeout as dead and returns the members
// that died in this sweep (transition edge only, so callers can trigger
// recovery exactly once per failure).
func (m *Membership) Sweep(now time.Time) []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	var died []Member
	for _, mem := range m.members {
		if mem.Alive && now.Sub(mem.LastSeen) > m.timeout {
			mem.Alive = false
			died = append(died, *mem)
		}
	}
	sort.Slice(died, func(i, j int) bool { return died[i].Node < died[j].Node })
	return died
}

// Alive returns the live members sorted by node ID.
func (m *Membership) Alive() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.members))
	for _, mem := range m.members {
		if mem.Alive {
			out = append(out, *mem)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// All returns every member (alive and dead) sorted by node ID.
func (m *Membership) All() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.members))
	for _, mem := range m.members {
		out = append(out, *mem)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Get returns a copy of one member.
func (m *Membership) Get(node wire.NodeID) (Member, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[node]
	if !ok {
		return Member{}, false
	}
	return *mem, true
}
