package cluster

import (
	"hash/fnv"
	"sort"

	"stcam/internal/geo"
	"stcam/internal/wire"
)

// Assignment maps camera IDs to owning workers.
type Assignment map[uint32]wire.NodeID

// CamerasOf returns the cameras assigned to one node, sorted.
func (a Assignment) CamerasOf(node wire.NodeID) []uint32 {
	var out []uint32
	for cam, n := range a {
		if n == node {
			out = append(out, cam)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Counts returns the number of cameras per node.
func (a Assignment) Counts() map[wire.NodeID]int {
	out := make(map[wire.NodeID]int)
	for _, n := range a {
		out[n]++
	}
	return out
}

// Partitioner decides which worker owns which camera. Implementations must be
// deterministic: the same cameras and nodes always produce the same
// assignment, so coordinator restarts converge.
type Partitioner interface {
	// Partition assigns every camera to exactly one of the given nodes.
	// Nodes must be non-empty; an empty camera list yields an empty map.
	Partition(cams []wire.CameraInfo, nodes []wire.NodeID) Assignment
	// Name identifies the strategy in experiment output.
	Name() string
}

// SpatialPartitioner assigns contiguous spatial blocks of cameras to workers
// by ordering cameras along a Hilbert curve and chunking evenly. Neighboring
// cameras land on the same worker, which keeps tracking handoffs local —
// the property experiment R3/R5 quantifies.
type SpatialPartitioner struct{}

var _ Partitioner = (*SpatialPartitioner)(nil)

// Name implements Partitioner.
func (*SpatialPartitioner) Name() string { return "spatial" }

// Partition implements Partitioner.
func (*SpatialPartitioner) Partition(cams []wire.CameraInfo, nodes []wire.NodeID) Assignment {
	out := make(Assignment, len(cams))
	if len(cams) == 0 || len(nodes) == 0 {
		return out
	}
	sortedNodes := sortNodes(nodes)
	// Normalize positions into the Hilbert lattice.
	bounds := geo.EmptyRect()
	for _, c := range cams {
		bounds = bounds.UnionPoint(c.Pos)
	}
	const order = 12 // 4096×4096 lattice: ample resolution for any deployment
	side := float64(int(1) << order)
	w, h := bounds.Width(), bounds.Height()
	type keyed struct {
		id uint64 // hilbert index
		c  uint32
	}
	ks := make([]keyed, len(cams))
	for i, c := range cams {
		var x, y float64
		if w > 0 {
			x = (c.Pos.X - bounds.Min.X) / w * (side - 1)
		}
		if h > 0 {
			y = (c.Pos.Y - bounds.Min.Y) / h * (side - 1)
		}
		ks[i] = keyed{id: hilbertD(order, uint32(x), uint32(y)), c: c.ID}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].id != ks[j].id {
			return ks[i].id < ks[j].id
		}
		return ks[i].c < ks[j].c
	})
	per := (len(ks) + len(sortedNodes) - 1) / len(sortedNodes)
	for i, k := range ks {
		out[k.c] = sortedNodes[i/per]
	}
	return out
}

// HashPartitioner assigns cameras with rendezvous (highest-random-weight)
// hashing: each camera goes to the node with the highest hash(camera, node).
// Node changes only move the cameras of the affected node — minimal churn —
// but spatial locality is destroyed, which is exactly the trade-off R5
// measures.
type HashPartitioner struct{}

var _ Partitioner = (*HashPartitioner)(nil)

// Name implements Partitioner.
func (*HashPartitioner) Name() string { return "hash" }

// Partition implements Partitioner.
func (*HashPartitioner) Partition(cams []wire.CameraInfo, nodes []wire.NodeID) Assignment {
	out := make(Assignment, len(cams))
	if len(cams) == 0 || len(nodes) == 0 {
		return out
	}
	sortedNodes := sortNodes(nodes)
	for _, c := range cams {
		var best wire.NodeID
		var bestScore uint64
		for _, n := range sortedNodes {
			h := fnv.New64a()
			var idb [4]byte
			idb[0] = byte(c.ID >> 24)
			idb[1] = byte(c.ID >> 16)
			idb[2] = byte(c.ID >> 8)
			idb[3] = byte(c.ID)
			h.Write(idb[:])
			h.Write([]byte(n))
			if score := h.Sum64(); best == "" || score > bestScore {
				best, bestScore = n, score
			}
		}
		out[c.ID] = best
	}
	return out
}

// RoundRobinPartitioner deals cameras to nodes in ID order. The naive static
// baseline.
type RoundRobinPartitioner struct{}

var _ Partitioner = (*RoundRobinPartitioner)(nil)

// Name implements Partitioner.
func (*RoundRobinPartitioner) Name() string { return "roundrobin" }

// Partition implements Partitioner.
func (*RoundRobinPartitioner) Partition(cams []wire.CameraInfo, nodes []wire.NodeID) Assignment {
	out := make(Assignment, len(cams))
	if len(cams) == 0 || len(nodes) == 0 {
		return out
	}
	sortedNodes := sortNodes(nodes)
	sorted := make([]wire.CameraInfo, len(cams))
	copy(sorted, cams)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i, c := range sorted {
		out[c.ID] = sortedNodes[i%len(sortedNodes)]
	}
	return out
}

func sortNodes(nodes []wire.NodeID) []wire.NodeID {
	out := make([]wire.NodeID, len(nodes))
	copy(out, nodes)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// hilbertD converts lattice coordinates (x, y) on a 2^order grid to the
// distance along the Hilbert curve.
func hilbertD(order int, x, y uint32) uint64 {
	var rx, ry uint32
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s /= 2 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}
