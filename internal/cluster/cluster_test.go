package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"stcam/internal/geo"
	"stcam/internal/wire"
)

// echoHandler answers CountQuery with CountResult{Count: QueryID} and errors
// on Error payloads — enough surface to test both transports uniformly.
func echoHandler(_ context.Context, _ string, req any) (any, error) {
	switch m := req.(type) {
	case *wire.CountQuery:
		return &wire.CountResult{QueryID: m.QueryID, Count: int(m.QueryID)}, nil
	case *wire.Heartbeat:
		return &wire.HeartbeatAck{Epoch: m.Seq}, nil
	case *wire.Error:
		return nil, errors.New("boom: " + m.Message)
	}
	return nil, fmt.Errorf("unexpected %T", req)
}

func transportsUnderTest(t *testing.T) map[string]func() (Transport, string) {
	return map[string]func() (Transport, string){
		"inproc": func() (Transport, string) {
			return NewInProc(), "nodeA"
		},
		"inproc-wire": func() (Transport, string) {
			return NewInProc(WithWireFormat()), "nodeA"
		},
		"tcp": func() (Transport, string) {
			return NewTCP(), "127.0.0.1:0"
		},
	}
}

func TestTransportCallRoundTrip(t *testing.T) {
	for name, mk := range transportsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			tr, addr := mk()
			defer tr.Close()
			srv, err := tr.Serve(addr, echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			resp, err := tr.Call(ctx, srv.Addr(), &wire.CountQuery{QueryID: 7, Rect: geo.RectOf(0, 0, 1, 1)})
			if err != nil {
				t.Fatal(err)
			}
			cr, ok := resp.(*wire.CountResult)
			if !ok || cr.Count != 7 {
				t.Fatalf("resp = %#v", resp)
			}
			if s := tr.Stats(); s.Calls != 1 || s.Errors != 0 {
				t.Errorf("stats = %+v", s)
			}
		})
	}
}

func TestTransportHandlerError(t *testing.T) {
	for name, mk := range transportsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			tr, addr := mk()
			defer tr.Close()
			srv, err := tr.Serve(addr, echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, err = tr.Call(ctx, srv.Addr(), &wire.Error{Message: "x"})
			if err == nil {
				t.Fatal("handler error not propagated")
			}
		})
	}
}

func TestTransportUnreachable(t *testing.T) {
	for name, mk := range transportsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			tr, _ := mk()
			defer tr.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
			defer cancel()
			badAddr := "nowhere"
			if name == "tcp" {
				badAddr = "127.0.0.1:1" // reserved port, nothing listens
			}
			if _, err := tr.Call(ctx, badAddr, &wire.Heartbeat{Node: "x"}); err == nil {
				t.Fatal("call to unreachable address succeeded")
			}
			if s := tr.Stats(); s.Errors == 0 {
				t.Error("error not counted")
			}
		})
	}
}

func TestTransportConcurrentCalls(t *testing.T) {
	for name, mk := range transportsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			tr, addr := mk()
			defer tr.Close()
			srv, err := tr.Serve(addr, echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			var wg sync.WaitGroup
			errCh := make(chan error, 64)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						id := uint64(g*1000 + i)
						ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
						resp, err := tr.Call(ctx, srv.Addr(), &wire.CountQuery{QueryID: id})
						cancel()
						if err != nil {
							errCh <- err
							return
						}
						if cr := resp.(*wire.CountResult); cr.QueryID != id || cr.Count != int(id) {
							errCh <- fmt.Errorf("mismatched response: sent %d got %+v", id, cr)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
		})
	}
}

func TestTCPServerCloseUnblocksClients(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	block := make(chan struct{})
	srv, err := tr.Serve("127.0.0.1:0", func(ctx context.Context, _ string, req any) (any, error) {
		<-block
		return &wire.HeartbeatAck{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_, err := tr.Call(ctx, srv.Addr(), &wire.Heartbeat{Node: "w"})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	close(block)
	if err := <-done; err != nil {
		t.Fatalf("call failed: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Calls after close fail.
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := tr.Call(ctx, srv.Addr(), &wire.Heartbeat{Node: "w"}); err == nil {
		t.Error("call to closed server succeeded")
	}
}

func TestInProcBlocking(t *testing.T) {
	tr := NewInProc()
	defer tr.Close()
	srv, err := tr.Serve("w1", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := tr.Call(ctx, "w1", &wire.CountQuery{QueryID: 1}); err != nil {
		t.Fatal(err)
	}
	tr.SetBlocked("w1", true)
	if _, err := tr.Call(ctx, "w1", &wire.CountQuery{QueryID: 2}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("blocked call error = %v", err)
	}
	tr.SetBlocked("w1", false)
	if _, err := tr.Call(ctx, "w1", &wire.CountQuery{QueryID: 3}); err != nil {
		t.Fatalf("unblocked call failed: %v", err)
	}
	_ = srv
}

func TestInProcDuplicateBind(t *testing.T) {
	tr := NewInProc()
	defer tr.Close()
	if _, err := tr.Serve("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Serve("a", echoHandler); err == nil {
		t.Fatal("duplicate bind succeeded")
	}
}

func TestInProcWireFormatValueSemantics(t *testing.T) {
	tr := NewInProc(WithWireFormat())
	defer tr.Close()
	var received *wire.RangeQuery
	_, err := tr.Serve("w", func(_ context.Context, _ string, req any) (any, error) {
		received = req.(*wire.RangeQuery)
		return &wire.RangeResult{QueryID: received.QueryID}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := &wire.RangeQuery{QueryID: 5, Rect: geo.RectOf(0, 0, 1, 1)}
	if _, err := tr.Call(context.Background(), "w", sent); err != nil {
		t.Fatal(err)
	}
	if received == sent {
		t.Error("wire-format transport shared the request pointer")
	}
	if s := tr.Stats(); s.BytesOut == 0 || s.BytesIn == 0 {
		t.Errorf("wire-format transport did not count bytes: %+v", s)
	}
}

func TestMembershipLifecycle(t *testing.T) {
	m := NewMembership(time.Second)
	now := time.Date(2026, 7, 5, 0, 0, 0, 0, time.UTC)
	m.Register(&wire.Register{Node: "w1", Addr: "a1", Capacity: 2}, now)
	m.Register(&wire.Register{Node: "w2", Addr: "a2"}, now) // capacity defaults to 1
	if got := len(m.Alive()); got != 2 {
		t.Fatalf("alive = %d", got)
	}
	mem, ok := m.Get("w2")
	if !ok || mem.Capacity != 1 {
		t.Errorf("w2 = %+v ok=%v", mem, ok)
	}
	// Heartbeats refresh; unknown nodes rejected.
	if !m.Heartbeat(&wire.Heartbeat{Node: "w1", Load: 10, Stored: 5, Cameras: 3}, now.Add(500*time.Millisecond)) {
		t.Error("heartbeat for registered node rejected")
	}
	if m.Heartbeat(&wire.Heartbeat{Node: "ghost"}, now) {
		t.Error("heartbeat for unknown node accepted")
	}
	// Sweep after timeout: w2 dies (no heartbeat), w1 survives.
	died := m.Sweep(now.Add(1200 * time.Millisecond))
	if len(died) != 1 || died[0].Node != "w2" {
		t.Fatalf("died = %+v", died)
	}
	// Edge-triggered: second sweep reports nothing new.
	if died := m.Sweep(now.Add(2 * time.Second)); len(died) != 1 || died[0].Node != "w1" {
		t.Fatalf("second sweep = %+v (w1 should now die)", died)
	}
	if got := len(m.Alive()); got != 0 {
		t.Errorf("alive after death = %d", got)
	}
	// A heartbeat revives a dead-but-known member.
	if !m.Heartbeat(&wire.Heartbeat{Node: "w1"}, now.Add(3*time.Second)) {
		t.Error("revival heartbeat rejected")
	}
	if got := len(m.Alive()); got != 1 {
		t.Errorf("alive after revival = %d", got)
	}
	if !m.Remove("w1") || m.Remove("w1") {
		t.Error("remove semantics wrong")
	}
}

func camsGrid(n int) []wire.CameraInfo {
	out := make([]wire.CameraInfo, n)
	side := 1
	for side*side < n {
		side++
	}
	for i := range out {
		out[i] = wire.CameraInfo{
			ID:  uint32(i + 1),
			Pos: geo.Pt(float64(i%side)*100, float64(i/side)*100),
		}
	}
	return out
}

func TestPartitionersCompleteAndDeterministic(t *testing.T) {
	cams := camsGrid(100)
	nodes := []wire.NodeID{"w3", "w1", "w2"}
	for _, p := range []Partitioner{&SpatialPartitioner{}, &HashPartitioner{}, &RoundRobinPartitioner{}} {
		t.Run(p.Name(), func(t *testing.T) {
			a := p.Partition(cams, nodes)
			if len(a) != len(cams) {
				t.Fatalf("assigned %d of %d cameras", len(a), len(cams))
			}
			valid := map[wire.NodeID]bool{"w1": true, "w2": true, "w3": true}
			for cam, node := range a {
				if !valid[node] {
					t.Fatalf("camera %d assigned to unknown node %q", cam, node)
				}
			}
			// Determinism, including across node-order permutations.
			b := p.Partition(cams, []wire.NodeID{"w1", "w2", "w3"})
			for cam := range a {
				if a[cam] != b[cam] {
					t.Fatalf("camera %d unstable: %v vs %v", cam, a[cam], b[cam])
				}
			}
			// Rough balance: no node has more than 2× the fair share.
			for node, count := range a.Counts() {
				if count > 2*len(cams)/len(nodes)+1 {
					t.Errorf("node %v has %d cameras (fair share %d)", node, count, len(cams)/len(nodes))
				}
			}
		})
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	for _, p := range []Partitioner{&SpatialPartitioner{}, &HashPartitioner{}, &RoundRobinPartitioner{}} {
		if got := p.Partition(nil, []wire.NodeID{"w1"}); len(got) != 0 {
			t.Errorf("%s: empty cameras → %v", p.Name(), got)
		}
		if got := p.Partition(camsGrid(3), nil); len(got) != 0 {
			t.Errorf("%s: no nodes → %v", p.Name(), got)
		}
		// Single node takes everything.
		a := p.Partition(camsGrid(7), []wire.NodeID{"only"})
		if len(a) != 7 {
			t.Errorf("%s: single node assigned %d", p.Name(), len(a))
		}
		for _, n := range a {
			if n != "only" {
				t.Errorf("%s: stray node %v", p.Name(), n)
			}
		}
	}
}

func TestSpatialPartitionerLocality(t *testing.T) {
	// Cameras on a 10×10 grid, 4 workers: spatially adjacent cameras should
	// overwhelmingly share a worker compared to round-robin.
	cams := camsGrid(100)
	nodes := []wire.NodeID{"w1", "w2", "w3", "w4"}
	adjacentSame := func(a Assignment) float64 {
		same, total := 0, 0
		for i := range cams {
			for j := range cams {
				if i >= j {
					continue
				}
				if cams[i].Pos.Dist(cams[j].Pos) <= 100.001 {
					total++
					if a[cams[i].ID] == a[cams[j].ID] {
						same++
					}
				}
			}
		}
		return float64(same) / float64(total)
	}
	spatial := adjacentSame((&SpatialPartitioner{}).Partition(cams, nodes))
	rr := adjacentSame((&RoundRobinPartitioner{}).Partition(cams, nodes))
	if spatial <= rr {
		t.Errorf("spatial locality %v not better than round-robin %v", spatial, rr)
	}
	if spatial < 0.6 {
		t.Errorf("spatial locality = %v, want >= 0.6", spatial)
	}
}

func TestHashPartitionerMinimalChurn(t *testing.T) {
	cams := camsGrid(200)
	p := &HashPartitioner{}
	before := p.Partition(cams, []wire.NodeID{"w1", "w2", "w3", "w4"})
	after := p.Partition(cams, []wire.NodeID{"w1", "w2", "w3"}) // w4 died
	moved := 0
	for _, c := range cams {
		if before[c.ID] != "w4" && before[c.ID] != after[c.ID] {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("rendezvous hashing moved %d cameras not owned by the dead node", moved)
	}
}

func TestHilbertCurveProperties(t *testing.T) {
	const order = 4
	side := 1 << order
	seen := make(map[uint64][2]uint32)
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			d := hilbertD(order, uint32(x), uint32(y))
			if prev, dup := seen[d]; dup {
				t.Fatalf("hilbert collision: (%d,%d) and %v both map to %d", x, y, prev, d)
			}
			seen[d] = [2]uint32{uint32(x), uint32(y)}
			if d >= uint64(side*side) {
				t.Fatalf("hilbert index %d out of range", d)
			}
		}
	}
	// Consecutive curve positions are lattice neighbors.
	byD := make([][2]uint32, side*side)
	for d, xy := range seen {
		byD[d] = xy
	}
	for d := 1; d < len(byD); d++ {
		dx := int(byD[d][0]) - int(byD[d-1][0])
		dy := int(byD[d][1]) - int(byD[d-1][1])
		if dx*dx+dy*dy != 1 {
			t.Fatalf("hilbert discontinuity between d=%d and d=%d", d-1, d)
		}
	}
}

func TestTransportStatsAccumulate(t *testing.T) {
	tr := NewInProc()
	defer tr.Close()
	srv, _ := tr.Serve("w", echoHandler)
	defer srv.Close()
	rng := rand.New(rand.NewSource(1))
	n := 20 + rng.Intn(20)
	for i := 0; i < n; i++ {
		tr.Call(context.Background(), "w", &wire.CountQuery{QueryID: uint64(i)})
	}
	if got := tr.Stats().Calls; got != int64(n) {
		t.Errorf("Calls = %d, want %d", got, n)
	}
}

// TestTCPClientRedialsAfterServerRestart: a client whose connection died must
// transparently redial when the server comes back on the same address.
func TestTCPClientRedialsAfterServerRestart(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	srv, err := tr.Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	ctx := context.Background()
	if _, err := tr.Call(ctx, addr, &wire.CountQuery{QueryID: 1}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The connection is dead now; a call must fail...
	failCtx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
	if _, err := tr.Call(failCtx, addr, &wire.CountQuery{QueryID: 2}); err == nil {
		t.Fatal("call to closed server succeeded")
	}
	cancel()
	// ...until a new server binds the same address, when the next call
	// redials.
	srv2, err := tr.Serve(addr, echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	var lastErr error
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		callCtx, cancel := context.WithTimeout(ctx, time.Second)
		_, lastErr = tr.Call(callCtx, addr, &wire.CountQuery{QueryID: 3})
		cancel()
		if lastErr == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("client never redialed: %v", lastErr)
}
