package cluster

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"stcam/internal/wire"
)

// TCP is the production Transport: one multiplexed TCP connection per remote
// address, length-prefixed wire frames tagged with request IDs, concurrent
// handler dispatch on the server side.
//
// RPC frame layout (inside the TCP stream):
//
//	[4B frame length][8B request id][1B flags][1B kind][8B trace id]?[1B priority][1B tenant len][tenant]?[1B format]?[payload]
//
// where flags bit0 = response, bit1 = trace id present (frame v2: the 8-byte
// trace field sits between the kind byte and the payload), bit2 = wire
// format byte present (frame v3: a wire.Format byte follows the trace field —
// or the kind byte when untraced — naming the payload encoding; without bit2
// the payload is wire.FormatV1), and bit3 = QoS tag present (frame v4: a
// priority byte plus a length-prefixed tenant name sit between the trace
// field and the format byte; the serving plane's admission control reads
// them via PriorityFrom/TenantFrom). Frames without bit1/bit2/bit3 are the
// original v1 layout, so old and new peers interoperate: a v1 frame decodes
// as an untraced, untagged FormatV1 call, and untraced untagged FormatV1
// calls are emitted as v1 frames byte-for-byte. An unknown format byte fails
// the frame cleanly — it is never mis-decoded as FormatV1. The frame length
// covers everything after the length field itself.
//
// Frames are built in and read into pooled wire.Buf buffers: encode appends
// the header and payload into one borrowed buffer released after the socket
// write, and the reader decodes out of a borrowed buffer released after
// wire.Unmarshal (decoded payloads never alias the read buffer), so steady
// state frame handling does not allocate per message.
type TCP struct {
	mu      sync.Mutex
	clients map[string]*tcpClient
	stats   statCounters
	closed  bool
}

// NewTCP returns a TCP transport.
func NewTCP() *TCP {
	return &TCP{clients: make(map[string]*tcpClient)}
}

var _ Transport = (*TCP)(nil)

const (
	flagResponse = 1 << 0
	flagTrace    = 1 << 1 // frame v2: 8-byte trace id follows the kind byte
	flagFormat   = 1 << 2 // frame v3: wire.Format byte follows the trace field
	flagQoS      = 1 << 3 // frame v4: priority byte + tenant string follow the trace field
	rpcHeaderLen = 8 + 1 + 1
	rpcTraceLen  = 8
	// maxTenantLen bounds the tenant name on the wire (one length byte).
	maxTenantLen = 255
)

// frameHeader is the decoded RPC frame header: identity, routing flags, and
// the optional trace/QoS tags.
type frameHeader struct {
	reqID   uint64
	flags   byte
	traceID uint64
	pri     Priority
	tenant  string
}

// Serve implements Transport.
func (t *TCP) Serve(addr string, h Handler) (Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	s := &tcpServer{t: t, ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

type tcpServer struct {
	t       *TCP
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

func (s *tcpServer) Addr() string { return s.ln.Addr().String() }

func (s *tcpServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *tcpServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	peer := conn.RemoteAddr().String()
	r := bufio.NewReaderSize(conn, 64<<10)
	var writeMu sync.Mutex
	w := bufio.NewWriterSize(conn, 64<<10)
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		hdr, env, err := readRPCFrame(r)
		if err != nil {
			return
		}
		if hdr.flags&flagResponse != 0 {
			continue // stray response on a server connection; drop
		}
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			hctx := WithTrace(context.Background(), hdr.traceID)
			hctx = WithPriority(hctx, hdr.pri)
			hctx = WithTenant(hctx, hdr.tenant)
			resp, err := s.handler(hctx, peer, env.Payload)
			if err != nil {
				resp = &wire.Error{Code: wire.CodeUnknown, Message: err.Error()}
			}
			if resp == nil {
				resp = &wire.Error{Code: wire.CodeUnknown, Message: "handler returned no response"}
			}
			// Marshal the whole frame before touching the shared writer: a
			// response that fails to encode must not leave a half-written
			// frame that would garble every later response on this
			// connection. Encoding failures turn into an Error response;
			// write failures mean the stream state is unknown, so the only
			// safe move is to drop the connection and let the client redial.
			// The response frame echoes the request's trace ID. The frame is
			// built in a pooled buffer released once the bufio writer has
			// copied it.
			buf := wire.BorrowBuf()
			defer buf.Release()
			frame, err := appendRPCFrame(buf.B[:0], hdr.reqID, flagResponse, hdr.traceID, resp)
			if err != nil {
				frame, err = appendRPCFrame(buf.B[:0], hdr.reqID, flagResponse, hdr.traceID,
					&wire.Error{Code: wire.CodeUnknown, Message: "response encoding failed: " + err.Error()})
				if err != nil {
					conn.Close()
					return
				}
			}
			buf.B = frame
			writeMu.Lock()
			defer writeMu.Unlock()
			if _, err := w.Write(frame); err != nil {
				conn.Close()
				return
			}
			if err := w.Flush(); err != nil {
				conn.Close()
			}
		}()
	}
}

// Call implements Transport.
func (t *TCP) Call(ctx context.Context, addr string, req any) (any, error) {
	t.stats.calls.Add(1)
	c, err := t.client(addr)
	if err != nil {
		t.stats.errors.Add(1)
		return nil, err
	}
	resp, err := c.call(ctx, req)
	if err != nil {
		t.stats.errors.Add(1)
		// A dead connection is removed so the next call redials.
		t.mu.Lock()
		if t.clients[addr] == c && c.dead() {
			delete(t.clients, addr)
		}
		t.mu.Unlock()
		return nil, err
	}
	if e, ok := resp.(*wire.Error); ok {
		return nil, &RemoteError{Code: e.Code, Message: e.Message}
	}
	return resp, nil
}

func (t *TCP) client(addr string) (*tcpClient, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrUnreachable
	}
	if c, ok := t.clients[addr]; ok && !c.dead() {
		return c, nil
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	c := newTCPClient(conn, &t.stats)
	t.clients[addr] = c
	return c, nil
}

// Stats implements Transport.
func (t *TCP) Stats() TransportStats { return t.stats.snapshot() }

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	for addr, c := range t.clients {
		c.close()
		delete(t.clients, addr)
	}
	return nil
}

// tcpClient is one multiplexed client connection.
type tcpClient struct {
	conn  net.Conn
	stats *statCounters

	writeMu sync.Mutex
	w       *bufio.Writer

	mu      sync.Mutex
	pending map[uint64]chan wire.Envelope
	nextID  uint64
	closed  bool
}

func newTCPClient(conn net.Conn, stats *statCounters) *tcpClient {
	c := &tcpClient{
		conn:    conn,
		stats:   stats,
		w:       bufio.NewWriterSize(conn, 64<<10),
		pending: make(map[uint64]chan wire.Envelope),
		nextID:  1,
	}
	go c.readLoop()
	return c
}

func (c *tcpClient) dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *tcpClient) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	c.conn.Close()
}

func (c *tcpClient) readLoop() {
	r := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		hdr, env, err := readRPCFrame(r)
		if err != nil {
			c.close()
			return
		}
		if hdr.flags&flagResponse == 0 {
			continue // servers do not push requests to clients
		}
		c.mu.Lock()
		ch, ok := c.pending[hdr.reqID]
		if ok {
			delete(c.pending, hdr.reqID)
		}
		c.mu.Unlock()
		if ok {
			ch <- env
		}
	}
}

func (c *tcpClient) call(ctx context.Context, req any) (any, error) {
	ch := make(chan wire.Envelope, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrUnreachable
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeRPCFrame(c.w, id, 0, TraceFrom(ctx), PriorityFrom(ctx), TenantFrom(ctx), req)
	if err == nil {
		err = c.w.Flush()
	}
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.close()
		return nil, fmt.Errorf("cluster: send: %w", err)
	}

	select {
	case env, ok := <-ch:
		if !ok {
			return nil, ErrUnreachable
		}
		return env.Payload, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// appendRPCFrame marshals one framed RPC message onto buf and returns the
// extended slice. Encoding happens entirely off the wire, so a failure here
// never corrupts a connection; on error buf is returned at its original
// length. The header and payload are appended into the same buffer — there is
// no intermediate body slice — so encoding into a pooled buffer is
// allocation-free at steady state. A non-zero traceID selects the v2 layout
// (flagTrace set, 8-byte trace field); traceID 0 emits the original v1 frame
// byte-for-byte.
func appendRPCFrame(buf []byte, reqID uint64, flags byte, traceID uint64, payload any) ([]byte, error) {
	return appendRPCFrameFull(buf, wire.FormatV1, reqID, flags, traceID, PriorityNone, "", payload)
}

// appendRPCFrameFormat is appendRPCFrame for an explicit wire format.
// FormatV1 is always emitted untagged (flagFormat clear, no format byte) so
// v1 peers keep decoding it; any other format sets flagFormat and inserts its
// format byte before the payload.
func appendRPCFrameFormat(buf []byte, f wire.Format, reqID uint64, flags byte, traceID uint64, payload any) ([]byte, error) {
	return appendRPCFrameFull(buf, f, reqID, flags, traceID, PriorityNone, "", payload)
}

// appendRPCFrameFull is the full frame encoder: format, trace, and QoS tags.
// An untagged call (PriorityNone, empty tenant) emits a pre-QoS frame
// byte-for-byte, so old peers keep decoding traffic from new clients.
func appendRPCFrameFull(buf []byte, f wire.Format, reqID uint64, flags byte, traceID uint64, pri Priority, tenant string, payload any) ([]byte, error) {
	kind := wire.KindOf(payload)
	if kind == 0 {
		return buf, &RemoteError{Code: wire.CodeBadRequest, Message: fmt.Sprintf("unknown message type %T", payload)}
	}
	if len(tenant) > maxTenantLen {
		return buf, &RemoteError{Code: wire.CodeBadRequest, Message: fmt.Sprintf("tenant name %d bytes exceeds %d", len(tenant), maxTenantLen)}
	}
	if traceID != 0 {
		flags |= flagTrace
	} else {
		flags &^= flagTrace
	}
	if f != wire.FormatV1 {
		flags |= flagFormat
	} else {
		flags &^= flagFormat
	}
	if pri != PriorityNone || tenant != "" {
		flags |= flagQoS
	} else {
		flags &^= flagQoS
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.BigEndian.AppendUint64(buf, reqID)
	buf = append(buf, flags, byte(kind))
	if traceID != 0 {
		buf = binary.BigEndian.AppendUint64(buf, traceID)
	}
	if flags&flagQoS != 0 {
		buf = append(buf, byte(pri), byte(len(tenant)))
		buf = append(buf, tenant...)
	}
	if f != wire.FormatV1 {
		buf = append(buf, byte(f))
	}
	out, err := wire.MarshalFormat(f, buf, kind, payload)
	if err != nil {
		return buf[:start], err
	}
	total := len(out) - start - 4
	if total > wire.MaxFrameSize {
		return out[:start], wire.ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(out[start:start+4], uint32(total))
	return out, nil
}

// writeRPCFrame marshals and writes one framed RPC message via a pooled
// buffer (w is buffered, so the frame is copied before release). pri/tenant
// add the QoS tag; untagged calls stay pre-QoS frames byte-for-byte.
func writeRPCFrame(w io.Writer, reqID uint64, flags byte, traceID uint64, pri Priority, tenant string, payload any) error {
	buf := wire.BorrowBuf()
	defer buf.Release()
	frame, err := appendRPCFrameFull(buf.B[:0], wire.FormatV1, reqID, flags, traceID, pri, tenant, payload)
	if err != nil {
		return err
	}
	buf.B = frame
	_, err = w.Write(frame)
	return err
}

// readRPCFrame reads one framed RPC message into a pooled buffer, released
// before returning (decoded payloads never alias it). hdr.traceID is 0 and
// hdr.pri/hdr.tenant are zero for v1 frames. A flagFormat frame dispatches on
// its format byte; unknown formats error cleanly instead of being decoded as
// FormatV1.
func readRPCFrame(r io.Reader) (hdr frameHeader, env wire.Envelope, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return frameHeader{}, wire.Envelope{}, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total < rpcHeaderLen || total > wire.MaxFrameSize {
		return frameHeader{}, wire.Envelope{}, wire.ErrFrameTooLarge
	}
	b := wire.BorrowBuf()
	defer b.Release()
	buf := b.Grow(int(total))
	if _, err = io.ReadFull(r, buf); err != nil {
		return frameHeader{}, wire.Envelope{}, err
	}
	hdr.reqID = binary.BigEndian.Uint64(buf[0:8])
	hdr.flags = buf[8]
	kind := wire.MsgKind(buf[9])
	body := buf[rpcHeaderLen:]
	if hdr.flags&flagTrace != 0 {
		if len(body) < rpcTraceLen {
			return frameHeader{}, wire.Envelope{}, io.ErrUnexpectedEOF
		}
		hdr.traceID = binary.BigEndian.Uint64(body[:rpcTraceLen])
		body = body[rpcTraceLen:]
	}
	if hdr.flags&flagQoS != 0 {
		if len(body) < 2 {
			return frameHeader{}, wire.Envelope{}, io.ErrUnexpectedEOF
		}
		hdr.pri = Priority(body[0])
		tlen := int(body[1])
		body = body[2:]
		if len(body) < tlen {
			return frameHeader{}, wire.Envelope{}, io.ErrUnexpectedEOF
		}
		// The tenant must not alias the pooled read buffer.
		hdr.tenant = string(body[:tlen])
		body = body[tlen:]
	}
	format := wire.FormatV1
	if hdr.flags&flagFormat != 0 {
		if len(body) < 1 {
			return frameHeader{}, wire.Envelope{}, io.ErrUnexpectedEOF
		}
		format = wire.Format(body[0])
		body = body[1:]
	}
	payload, err := wire.UnmarshalFormat(format, kind, body)
	if err != nil {
		return frameHeader{}, wire.Envelope{}, err
	}
	return hdr, wire.Envelope{Kind: kind, Payload: payload}, nil
}
