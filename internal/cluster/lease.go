package cluster

import (
	"sync"
	"time"

	"stcam/internal/wire"
)

// Lease tracks a leader's lease from the observer side. The leader renews it
// by streaming Replicate frames (an empty frame is a pure renewal); a standby
// that sees the lease expire starts an election. The TTL should be a small
// multiple of the renewal interval so one lost frame does not trigger a
// failover.
type Lease struct {
	ttl time.Duration

	mu     sync.Mutex
	leader wire.NodeID
	addr   string
	epoch  uint64
	last   time.Time
}

// NewLease returns a lease tracker that considers the leader gone after ttl
// without a renewal (minimum 1ms; default 500ms when zero). The lease starts
// expired: a standby must hear from a leader before trusting one.
func NewLease(ttl time.Duration) *Lease {
	if ttl <= 0 {
		ttl = 500 * time.Millisecond
	} else if ttl < time.Millisecond {
		ttl = time.Millisecond
	}
	return &Lease{ttl: ttl}
}

// Renew records a lease renewal from leader at epoch. Renewals from an older
// epoch than the last accepted one are ignored (a deposed leader's stale
// stream must not suppress failover) and Renew reports whether the renewal
// was accepted.
func (l *Lease) Renew(leader wire.NodeID, addr string, epoch uint64, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch < l.epoch {
		return false
	}
	l.leader, l.addr, l.epoch, l.last = leader, addr, epoch, now
	return true
}

// Expired reports whether the lease has lapsed at now.
func (l *Lease) Expired(now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last.IsZero() || now.Sub(l.last) > l.ttl
}

// Holder returns the last accepted leader, its address, and its epoch.
func (l *Lease) Holder() (wire.NodeID, string, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.leader, l.addr, l.epoch
}

// TTL returns the configured lease lifetime.
func (l *Lease) TTL() time.Duration { return l.ttl }

// ElectLeader picks the failover leader deterministically: the lowest node
// ID among the candidates with the maximum applied journal index. Every
// reachable standby computes the same answer from the same inputs, so no
// voting round is needed — ties in journal progress break toward the stable
// lowest ID. Returns false when candidates is empty.
func ElectLeader(applied map[wire.NodeID]uint64) (wire.NodeID, bool) {
	var (
		best    wire.NodeID
		bestIdx uint64
		found   bool
	)
	for id, idx := range applied {
		if !found || idx > bestIdx || (idx == bestIdx && id < best) {
			best, bestIdx, found = id, idx, true
		}
	}
	return best, found
}
