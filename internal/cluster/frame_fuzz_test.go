package cluster

import (
	"bytes"
	"encoding/binary"
	"testing"

	"stcam/internal/wire"
)

// FuzzReadRPCFrame throws arbitrary bytes at the TCP frame reader: it must
// either decode a frame or return an error — never panic, never over-allocate
// past the frame-size cap — and every valid frame it does decode must
// round-trip back to identical bytes. Both frame versions are covered: v1
// (no trace field) and v2 (flagTrace + 8-byte trace id).
func FuzzReadRPCFrame(f *testing.F) {
	// Seed with a valid frame, its truncations, and classic corruptions.
	valid, err := appendRPCFrame(nil, 42, 1, 0, &wire.Heartbeat{Node: "w1", Seq: 9, Load: 1.5})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// The same message as a v2 traced frame.
	traced, err := appendRPCFrame(nil, 42, 1, 0xdeadbeefcafef00d, &wire.Heartbeat{Node: "w1", Seq: 9, Load: 1.5})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(traced)
	f.Add(traced[:16]) // flagTrace set but trace field truncated
	// The same message as a v4 QoS-tagged frame (priority + tenant).
	tagged, err := appendRPCFrameFull(nil, wire.FormatV1, 42, 1, 0xdeadbeefcafef00d,
		PriorityBackground, "acme", &wire.Heartbeat{Node: "w1", Seq: 9, Load: 1.5})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tagged)
	f.Add(tagged[:24]) // flagQoS set but tenant bytes truncated
	// A sequenced multi-camera ingest batch (the coalesced pipeline shape)
	// and a clock-only tick exercise the Source/Seq encoding paths.
	multiCam, err := appendRPCFrame(nil, 43, 0, 7, &wire.IngestBatch{
		Source: "ingest-1",
		Seq:    7,
		Observations: []wire.Observation{
			{ObsID: 1, Camera: 3, Feature: []float32{0.25, -0.5}},
			{ObsID: 2, Camera: 9},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(multiCam)
	clockOnly, err := appendRPCFrame(nil, 44, 0, 0, &wire.IngestBatch{Source: "ingest-2", Seq: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clockOnly)
	f.Add(valid[:4])             // header only
	f.Add(valid[:len(valid)-2])  // truncated body
	f.Add([]byte{})              // empty
	f.Add([]byte{0, 0, 0, 0, 0}) // zero-length frame
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, 0xFFFFFFFF) // oversized declared length
	f.Add(huge)
	flipped := append([]byte(nil), valid...)
	flipped[13] = 200 // unknown message kind
	f.Add(flipped)
	badLen := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(badLen, uint32(len(valid))) // length > actual payload
	f.Add(badLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, env, err := readRPCFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode to a frame that decodes equal:
		// the reader and writer agree on the format. The re-encoder picks
		// the frame version from the trace ID and QoS tags, so flags may
		// gain or lose flagTrace/flagQoS when the input set a bit
		// inconsistently (e.g. a traced frame whose trace field decoded to
		// 0, or a QoS frame tagged PriorityNone with an empty tenant); mask
		// them out of the header comparison and compare the values directly.
		frame, err := appendRPCFrameFull(nil, wire.FormatV1, hdr.reqID, hdr.flags, hdr.traceID, hdr.pri, hdr.tenant, env.Payload)
		if err != nil {
			t.Fatalf("decoded payload %T does not re-encode: %v", env.Payload, err)
		}
		hdr2, env2, err := readRPCFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		const ownedBits = flagTrace | flagQoS
		if hdr2.reqID != hdr.reqID || hdr2.flags&^byte(ownedBits) != hdr.flags&^byte(ownedBits) ||
			hdr2.traceID != hdr.traceID || hdr2.pri != hdr.pri || hdr2.tenant != hdr.tenant || env2.Kind != env.Kind {
			t.Fatalf("round trip changed header: (%+v,%v) vs (%+v,%v)", hdr, env.Kind, hdr2, env2.Kind)
		}
		// Compare payloads by their encoding, not reflect.DeepEqual: NaN
		// floats round-trip byte-identically but are never reflect-equal.
		b1, err1 := wire.Marshal(env.Kind, env.Payload)
		b2, err2 := wire.Marshal(env2.Kind, env2.Payload)
		if err1 != nil || err2 != nil || !bytes.Equal(b1, b2) {
			t.Fatalf("round trip changed payload:\n got  %#v\n want %#v", env2.Payload, env.Payload)
		}
	})
}
