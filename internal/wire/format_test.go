package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// TestFrameV1IsUntagged: FormatV1 frames must carry no format byte — the
// high bit of the kind byte stays clear, and the frame is exactly the
// pre-format layout (the golden suite pins the full bytes; this pins the
// mechanism).
func TestFrameV1IsUntagged(t *testing.T) {
	msg := &TrackStop{TrackID: 3}
	frame, err := AppendFrameFormat(nil, FormatV1, KindTrackStop, msg)
	if err != nil {
		t.Fatal(err)
	}
	if frame[4]&kindFormatTag != 0 {
		t.Fatalf("FormatV1 frame has the format-tag bit set: kind byte %02x", frame[4])
	}
	plain, err := AppendFrame(nil, KindTrackStop, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, plain) {
		t.Fatal("explicit FormatV1 differs from the default frame")
	}
}

// TestFrameTaggedV1Accepted: a frame that explicitly tags FormatV1 (high bit
// set, format byte 0x01) must decode identically to the untagged form — a
// future sender may always tag.
func TestFrameTaggedV1Accepted(t *testing.T) {
	msg := &Heartbeat{Node: "w2", Seq: 8, Load: 0.5}
	body, err := Marshal(KindHeartbeat, msg)
	if err != nil {
		t.Fatal(err)
	}
	frame := []byte{0, 0, 0, 0, byte(KindHeartbeat) | kindFormatTag, byte(FormatV1)}
	frame = append(frame, body...)
	frame[3] = byte(len(frame) - 4) // frame is tiny; single length byte

	env, err := ReadMessage(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("tagged FormatV1 frame rejected: %v", err)
	}
	if env.Kind != KindHeartbeat || !reflect.DeepEqual(env.Payload, msg) {
		t.Fatalf("tagged FormatV1 frame mis-decoded: %#v", env.Payload)
	}
}

// TestFrameUnknownFormatRejected: an unknown format tag must error with
// ErrUnknownFormat — never decode as FormatV1 even when the payload would
// parse as one.
func TestFrameUnknownFormatRejected(t *testing.T) {
	body, err := Marshal(KindTrackStop, &TrackStop{TrackID: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []byte{0x00, 0x02, 0x7f, 0xff} {
		frame := []byte{0, 0, 0, 0, byte(KindTrackStop) | kindFormatTag, f}
		frame = append(frame, body...)
		frame[3] = byte(len(frame) - 4)
		_, err := ReadMessage(bytes.NewReader(frame))
		if err == nil {
			t.Fatalf("unknown format 0x%02x decoded without error", f)
		}
		if !errors.Is(err, ErrUnknownFormat) {
			t.Fatalf("unknown format 0x%02x: got %v, want ErrUnknownFormat", f, err)
		}
	}
}

// TestFrameTruncatedFormatTag: a tagged frame whose length ends before the
// format byte must error, not panic or misparse.
func TestFrameTruncatedFormatTag(t *testing.T) {
	frame := []byte{0, 0, 0, 1, byte(KindTrackStop) | kindFormatTag}
	if _, err := ReadMessage(bytes.NewReader(frame)); err == nil {
		t.Fatal("truncated format tag decoded without error")
	}
}

// TestAppendFrameUnknownFormatErrors: the encoder refuses formats this build
// does not implement, leaving dst untouched.
func TestAppendFrameUnknownFormatErrors(t *testing.T) {
	pre := []byte{1, 2, 3}
	out, err := AppendFrameFormat(pre, Format(0x42), KindTrackStop, &TrackStop{TrackID: 1})
	if err == nil || !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("got %v, want ErrUnknownFormat", err)
	}
	if !bytes.Equal(out, pre) {
		t.Fatal("failed append mutated dst")
	}
}

// TestFormatStringer names known formats and shows raw bytes for unknown.
func TestFormatStringer(t *testing.T) {
	if FormatV1.String() != "v1" {
		t.Fatalf("FormatV1.String() = %q", FormatV1.String())
	}
	if !FormatV1.Known() || Format(9).Known() {
		t.Fatal("Known() wrong for v1 or format 9")
	}
	if s := Format(0x2a).String(); s != "Format(0x2a)" {
		t.Fatalf("unknown format string = %q", s)
	}
}

// TestUnmarshalFormatUnknown: the payload-level dispatch rejects unknown
// formats before touching the kind — decode and decode-into both.
func TestUnmarshalFormatUnknown(t *testing.T) {
	if _, err := UnmarshalFormat(Format(3), KindHeartbeat, nil); !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("UnmarshalFormat: got %v, want ErrUnknownFormat", err)
	}
	if err := UnmarshalIntoFormat(Format(3), KindHeartbeat, nil, &Heartbeat{}); !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("UnmarshalIntoFormat: got %v, want ErrUnknownFormat", err)
	}
	if _, err := MarshalFormat(Format(3), nil, KindHeartbeat, &Heartbeat{}); !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("MarshalFormat: got %v, want ErrUnknownFormat", err)
	}
}
