package wire

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// Pool safety layer. These tests run under -race in CI (make check): if the
// pool ever hands one buffer to two holders, the concurrent writes are a
// detector hit as well as a byte-level mismatch.

// poolTestBatch builds a deterministic per-lane batch so each goroutine knows
// exactly which bytes its frames must contain.
func poolTestBatch(lane, iter int) *IngestBatch {
	return &IngestBatch{
		Camera: uint32(lane),
		Source: fmt.Sprintf("lane-%d", lane),
		Seq:    uint64(iter),
		Observations: []Observation{
			{ObsID: uint64(lane)<<32 | uint64(iter), Camera: uint32(lane), Feature: []float32{float32(lane), float32(iter)}},
			{ObsID: uint64(iter), TrueID: uint64(lane)},
		},
	}
}

// TestPoolDecodeNeverAliases: nothing a decode returns may alias the input
// buffer — that is what makes releasing read buffers immediately after
// Unmarshal safe. The test scribbles over the buffer after decoding and
// checks the decoded message still re-encodes to the pristine bytes.
func TestPoolDecodeNeverAliases(t *testing.T) {
	msg := poolTestBatch(1, 2)
	b := BorrowBuf()
	enc, err := AppendMarshal(b.B[:0], KindIngestBatch, msg)
	if err != nil {
		t.Fatal(err)
	}
	b.B = enc
	pristine := append([]byte(nil), enc...)

	got, err := Unmarshal(KindIngestBatch, enc)
	if err != nil {
		t.Fatal(err)
	}
	into := &IngestBatch{}
	if err := UnmarshalInto(KindIngestBatch, enc, into); err != nil {
		t.Fatal(err)
	}
	// Clobber the buffer the way a pooled reuse would.
	for i := range enc {
		enc[i] = 0xFF
	}
	b.Release()
	for name, v := range map[string]any{"value": got, "into": into} {
		re, err := Marshal(KindIngestBatch, v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, pristine) {
			t.Fatalf("%s decode aliased the input buffer: re-encode changed after clobber", name)
		}
	}
}

// TestPoolMutateAfterReleaseIsIsolated: a holder that (illegally) mutates its
// buffer after release must not corrupt frames built by the next borrower —
// because the next borrower overwrites from length 0, not because the bytes
// happen to survive. This pins the borrow/release protocol: every frame's
// correctness depends only on its own append, never on buffer history.
func TestPoolMutateAfterReleaseIsIsolated(t *testing.T) {
	msgA := poolTestBatch(7, 1)
	wantA, err := Marshal(KindIngestBatch, msgA)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 100; iter++ {
		b1 := BorrowBuf()
		frame1, err := AppendMarshal(b1.B[:0], KindIngestBatch, msgA)
		if err != nil {
			t.Fatal(err)
		}
		b1.B = frame1
		b1.Release()
		// Misuse: scribble over the released buffer's bytes.
		for i := range frame1 {
			frame1[i] = byte(iter)
		}
		// The next borrow may or may not return the same backing array;
		// either way the frame it builds must be exactly right.
		b2 := BorrowBuf()
		frame2, err := AppendMarshal(b2.B[:0], KindIngestBatch, msgA)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame2, wantA) {
			t.Fatalf("iter %d: frame built after post-release mutation is corrupt", iter)
		}
		b2.B = frame2
		b2.Release()
	}
}

// TestPoolConcurrentEncodeDecode: many goroutines hammer borrow → encode →
// decode → release concurrently; every frame must contain exactly its lane's
// bytes and decode back to its lane's message (into a lane-reused struct).
// Cross-lane corruption means the pool aliased a live buffer. Run with -race.
func TestPoolConcurrentEncodeDecode(t *testing.T) {
	const lanes = 8
	const iters = 400
	borrows0, misses0 := PoolStats()
	var wg sync.WaitGroup
	errs := make(chan error, lanes)
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			reused := &IngestBatch{}
			for iter := 0; iter < iters; iter++ {
				want := poolTestBatch(lane, iter)
				wantBytes, err := Marshal(KindIngestBatch, want)
				if err != nil {
					errs <- err
					return
				}
				b := BorrowBuf()
				frame, err := AppendMarshal(b.B[:0], KindIngestBatch, want)
				if err != nil {
					errs <- err
					return
				}
				b.B = frame
				if !bytes.Equal(frame, wantBytes) {
					errs <- fmt.Errorf("lane %d iter %d: pooled encode corrupt", lane, iter)
					return
				}
				if err := UnmarshalInto(KindIngestBatch, frame, reused); err != nil {
					errs <- err
					return
				}
				b.Release()
				if !reflect.DeepEqual(reused, want) {
					errs <- fmt.Errorf("lane %d iter %d: decode-into corrupt after pooled round-trip", lane, iter)
					return
				}
			}
		}(lane)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	borrows1, misses1 := PoolStats()
	borrowDelta := borrows1 - borrows0
	missDelta := misses1 - misses0
	if borrowDelta < lanes*iters {
		t.Fatalf("pool borrow counter did not move under load: delta %d, want >= %d", borrowDelta, lanes*iters)
	}
	// The pool must actually serve traffic: under sustained load the hit
	// count (borrows - misses) dominates. GC may drop pooled buffers, so the
	// bound is deliberately loose.
	if hits := borrowDelta - missDelta; hits < borrowDelta/2 {
		t.Fatalf("pool is not recycling: %d hits out of %d borrows", hits, borrowDelta)
	}
}

// TestPoolOversizedBuffersDropped: a frame past maxPooledBuf is served but
// its buffer must not come back from the pool (one huge frame must not pin
// megabytes forever). Verified via the Release fast-path being a no-op —
// the buffer object itself never reappears.
func TestPoolOversizedBuffersDropped(t *testing.T) {
	b := BorrowBuf()
	b.Grow(maxPooledBuf + 1)
	huge := b
	b.Release()
	// Drain up to a generous number of borrows: the huge *Buf must not be
	// handed back out (its capacity survives only if Release pooled it).
	var out []*Buf
	for i := 0; i < 64; i++ {
		nb := BorrowBuf()
		if nb == huge {
			t.Fatal("oversized buffer returned to the pool")
		}
		out = append(out, nb)
	}
	for _, nb := range out {
		nb.Release()
	}
}

// TestWriteReadMessagePooled: the frame writer/reader pair built on the pool
// still speaks the plain framed protocol — and a full write→read cycle does
// not hand back messages that alias pool memory (the previous tests pin the
// properties; this one pins the integration).
func TestWriteReadMessagePooled(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*IngestBatch{poolTestBatch(1, 1), poolTestBatch(2, 2), poolTestBatch(3, 3)}
	for _, m := range msgs {
		if err := WriteMessage(&buf, KindIngestBatch, m); err != nil {
			t.Fatal(err)
		}
	}
	var got []*IngestBatch
	for range msgs {
		env, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, env.Payload.(*IngestBatch))
	}
	// Force heavy pool churn, then verify earlier decodes are untouched.
	for i := 0; i < 100; i++ {
		if err := WriteMessage(&buf, KindIngestBatch, poolTestBatch(99, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadMessage(&buf); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range msgs {
		if !reflect.DeepEqual(got[i], m) {
			t.Fatalf("message %d corrupted by later pool reuse:\n got  %#v\n want %#v", i, got[i], m)
		}
	}
}
