package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"

	"stcam/internal/geo"
)

var t0 = time.Date(2026, 7, 5, 12, 0, 0, 123456789, time.UTC)

// allMessages returns one populated instance of every protocol message. Codec
// coverage lives or dies by this list staying exhaustive, which
// TestEveryKindCovered enforces.
func allMessages() []any {
	return []any{
		&Register{Node: "w1", Addr: "127.0.0.1:7001", Capacity: 2},
		&RegisterAck{Accepted: true, Reason: "ok"},
		&Heartbeat{Node: "w1", Seq: 42, Load: 123.5, Stored: 10000, Cameras: 16,
			Summary: &WorkerSummary{
				Epoch: 7, Records: 10000, CellSize: 200,
				BucketFrom: t0, BucketWidth: time.Minute,
				Cells: []SummaryCell{
					{CX: 0, CY: 1, Count: 9000, Bounds: geo.RectOf(0, 200, 180, 390), Buckets: []int64{100, 0, 8900}},
					{CX: -2, CY: 3, Count: 1000, Bounds: geo.RectOf(-400, 600, -250, 780), Buckets: []int64{0, 1000}},
				}}},
		&Heartbeat{Node: "w2", Seq: 1, Load: 0, Stored: 0, Cameras: 0},
		&HeartbeatAck{Epoch: 7},
		&IngestBatch{Camera: 3, FrameTime: t0.Add(2 * time.Second), Observations: []Observation{
			{ObsID: 1, Camera: 3, Time: t0, Pos: geo.Pt(1.5, -2.5), Feature: []float32{0.1, -0.2, 0.3}, TrueID: 9},
			{ObsID: 2, Camera: 3, Time: t0.Add(time.Second), Pos: geo.Pt(0, 0)},
		}},
		&IngestAck{Accepted: 2, Rejected: 1},
		&RangeQuery{QueryID: 11, Rect: geo.RectOf(0, 0, 100, 50), Window: TimeWindow{From: t0, To: t0.Add(time.Minute)}, Limit: 500},
		&RangeResult{QueryID: 11, Records: []ResultRecord{
			{ObsID: 5, TargetID: 2, Camera: 1, Pos: geo.Pt(3, 4), Time: t0},
		}, Truncated: true, Asked: 8, Answered: 7},
		&KNNQuery{QueryID: 12, Center: geo.Pt(10, 20), Window: TimeWindow{From: t0, To: t0.Add(time.Hour)}, K: 5, MaxDist2: 156.25},
		&KNNResult{QueryID: 12, Records: []KNNRecord{
			{ResultRecord: ResultRecord{ObsID: 7, Camera: 2, Pos: geo.Pt(1, 1), Time: t0}, Dist2: 2.25},
		}, Asked: 3, Answered: 3},
		&CountQuery{QueryID: 13, Rect: geo.RectOf(-5, -5, 5, 5), Window: TimeWindow{From: t0, To: t0}},
		&CountResult{QueryID: 13, Count: 77, Asked: 4, Answered: 3},
		&TrajectoryQuery{QueryID: 14, TargetID: 99, Window: TimeWindow{From: t0, To: t0.Add(time.Hour)}},
		&TrajectoryResult{QueryID: 14, Records: []ResultRecord{
			{ObsID: 1, TargetID: 99, Camera: 4, Pos: geo.Pt(0, 1), Time: t0},
			{ObsID: 2, TargetID: 99, Camera: 5, Pos: geo.Pt(1, 2), Time: t0.Add(time.Second)},
		}},
		&InstallContinuous{QueryID: 15, Kind: ContinuousRange, Rect: geo.RectOf(0, 0, 10, 10), Threshold: 3},
		&RemoveContinuous{QueryID: 15},
		&ContinuousUpdate{QueryID: 15, Time: t0,
			Positive: []ResultRecord{{ObsID: 1, TargetID: 5, Camera: 1, Pos: geo.Pt(2, 2), Time: t0}},
			Negative: []ResultRecord{{ObsID: 2, TargetID: 6, Camera: 1, Pos: geo.Pt(50, 2), Time: t0}},
			Count:    4},
		&AssignCameras{Epoch: 3, Cameras: []CameraInfo{
			{ID: 1, Pos: geo.Pt(0, 0), Orient: 0.5, HalfFOV: 0.6, Range: 80},
			{ID: 2, Pos: geo.Pt(100, 0), Orient: -0.5, HalfFOV: 0.7, Range: 90},
		}, Replicas: []CameraInfo{
			{ID: 3, Pos: geo.Pt(200, 0), Orient: 0.1, HalfFOV: 0.6, Range: 80},
		}},
		&AssignAck{Epoch: 3, Accepted: 2},
		&TrackStart{TrackID: 21, Camera: 6, Feature: []float32{1, 0, 0}, Time: t0},
		&TrackPrime{TrackID: 21, Cameras: []uint32{7, 8}, Feature: []float32{1, 0, 0}, Expires: t0.Add(30 * time.Second)},
		&TrackHandoff{TrackID: 21, FromCamera: 6, ToCamera: 7, Feature: []float32{0, 1, 0}, Time: t0, Hops: 2},
		&TrackUpdate{TrackID: 21, Camera: 7, Pos: geo.Pt(9, 9), Time: t0, Lost: false},
		&TrackStop{TrackID: 21},
		&StatsQuery{},
		&StatsResult{Node: "w2", Counters: map[string]int64{"ingest": 100, "queries": 5}, Gauges: map[string]int64{"stored": 42},
			Histograms: map[string]HistStats{"rpc.call.Heartbeat": {Count: 9, Sum: 9_000_000, Min: 500_000, Max: 2_000_000, P50: 900_000, P95: 1_900_000, P99: 2_000_000}}},
		&ClusterStatsQuery{},
		&ClusterStatsResult{Epoch: 4, Role: "leader", Leader: "c1", LeaderAddr: "coord-1",
			Coordinator: StatsResult{Node: "coordinator", Counters: map[string]int64{"queries.range": 12}},
			Workers: []WorkerStatsEntry{
				{Node: "w1", Addr: "127.0.0.1:7001", Alive: true, Load: 120.5, Stored: 9000, Cameras: 8, Scraped: true,
					Stats: StatsResult{Node: "w1", Counters: map[string]int64{"ingest.accepted": 9000}, Gauges: map[string]int64{"tracks.resident": 2},
						Histograms: map[string]HistStats{"ingest.latency": {Count: 3, Sum: 300, Min: 50, Max: 200, P50: 50, P95: 200, P99: 200}}}},
				{Node: "w2", Addr: "127.0.0.1:7002", Alive: false, Load: 0, Stored: 400, Cameras: 0, Scraped: false},
			}},
		&Replicate{Leader: "c1", LeaderAddr: "coord-1", Epoch: 9, Commit: 41, FromIndex: 40, Records: []ControlRecord{
			{Index: 40, Epoch: 8, Op: OpCameras, Cameras: []CameraInfo{{ID: 4, Pos: geo.Pt(10, 20), Orient: 0.25, HalfFOV: 0.5, Range: 60}}},
			{Index: 41, Epoch: 9, Op: OpAssign, Assign: []AssignEntry{
				{Camera: 4, Node: "w1", Replicas: []NodeID{"w2", "w3"}},
				{Camera: 5, Node: "w2"},
			}},
			{Index: 42, Epoch: 9, Op: OpTrack, Track: TrackRecord{TrackID: 21, Owner: "w1", LastCamera: 4, Feature: []float32{1, 0}, LastSeen: t0, Handoffs: 3}},
			{Index: 43, Epoch: 9, Op: OpTrackRemove, Track: TrackRecord{TrackID: 21}},
			{Index: 44, Epoch: 9, Op: OpMember, Member: MemberRecord{Node: "w4", Addr: "127.0.0.1:7004", Capacity: 2}},
		}},
		&Replicate{Leader: "c2", LeaderAddr: "coord-2", Epoch: 10, Commit: 44}, // pure lease renewal
		&Replicate{Leader: "c2", LeaderAddr: "coord-2", Epoch: 10, Commit: 50, SnapIndex: 50, Records: []ControlRecord{
			{Epoch: 10, Op: OpMember, Member: MemberRecord{Node: "w1", Addr: "127.0.0.1:7001", Capacity: 1}},
		}}, // full-state snapshot after journal compaction
		&ReplicateAck{Applied: 44, NeedFrom: 0},
		&ReplicateAck{Applied: 12, NeedFrom: 13},
		&LeaderQuery{},
		&LeaderInfo{Node: "c2", Addr: "coord-2", IsLeader: false, Leader: "c1", LeaderAddr: "coord-1", Epoch: 9, Applied: 44},
		&Error{Code: CodeNotFound, Message: "no such track"},
		&HeatmapQuery{QueryID: 30, Rect: geo.RectOf(0, 0, 500, 500), Window: TimeWindow{From: t0, To: t0.Add(time.Minute)}, CellSize: 50},
		&HeatmapResult{QueryID: 30, CellSize: 50, Cells: []HeatCell{{CX: 1, CY: -2, Count: 17}, {CX: 0, CY: 0, Count: 3}}},
		&FilterQuery{QueryID: 31, Rect: geo.RectOf(0, 0, 100, 100), Window: TimeWindow{From: t0, To: t0.Add(time.Minute)}, TargetID: 5, Cameras: []uint32{1, 3}, Limit: 10},
		&FilterResult{QueryID: 31, Records: []ResultRecord{{ObsID: 4, TargetID: 5, Camera: 3, Pos: geo.Pt(1, 2), Time: t0}}, Plan: "target", Truncated: true},
	}
}

// TestEveryKindCovered ensures allMessages covers every declared kind, so the
// round-trip test below really exercises the whole protocol.
func TestEveryKindCovered(t *testing.T) {
	covered := map[MsgKind]bool{}
	for _, m := range allMessages() {
		k := KindOf(m)
		if k == 0 {
			t.Fatalf("KindOf(%T) = 0", m)
		}
		covered[k] = true
	}
	for k := KindRegister; k <= KindClusterStatsResult; k++ {
		if !covered[k] {
			t.Errorf("message kind %v (%d) has no round-trip coverage", k, int(k))
		}
	}
}

// TestRoundTripAll is the codec invariant from DESIGN.md: Decode(Encode(m))
// equals m for every protocol message.
func TestRoundTripAll(t *testing.T) {
	for _, msg := range allMessages() {
		kind := KindOf(msg)
		t.Run(kind.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteMessage(&buf, kind, msg); err != nil {
				t.Fatalf("write: %v", err)
			}
			env, err := ReadMessage(&buf)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if env.Kind != kind {
				t.Fatalf("kind = %v, want %v", env.Kind, kind)
			}
			if !reflect.DeepEqual(env.Payload, msg) {
				t.Errorf("round trip mismatch:\n got  %#v\n want %#v", env.Payload, msg)
			}
		})
	}
}

func TestRoundTripStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := allMessages()
	for _, m := range msgs {
		if err := WriteMessage(&buf, KindOf(m), m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		env, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(env.Payload, want) {
			t.Fatalf("message %d mismatch: %#v", i, env.Payload)
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Errorf("trailing read = %v, want io.EOF", err)
	}
}

func TestZeroTimes(t *testing.T) {
	msg := &TrackStart{TrackID: 1, Camera: 2}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, KindTrackStart, msg); err != nil {
		t.Fatal(err)
	}
	env, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := env.Payload.(*TrackStart)
	if !got.Time.IsZero() {
		t.Errorf("zero time decoded as %v", got.Time)
	}
}

func TestCorruptFrames(t *testing.T) {
	// Truncated header.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Error("truncated header accepted")
	}
	// Oversized length.
	big := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(KindHeartbeat)}
	if _, err := ReadMessage(bytes.NewReader(big)); err != ErrFrameTooLarge {
		t.Errorf("oversized frame error = %v", err)
	}
	// Zero-size frame.
	zero := []byte{0, 0, 0, 0, 0}
	if _, err := ReadMessage(bytes.NewReader(zero)); err == nil {
		t.Error("zero-size frame accepted")
	}
	// Unknown kind.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 1, 200})
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("unknown kind accepted")
	}
	// Truncated body: valid header, missing payload bytes.
	var good bytes.Buffer
	if err := WriteMessage(&good, KindHeartbeat, &Heartbeat{Node: "w", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	cut := good.Bytes()[:good.Len()-3]
	if _, err := ReadMessage(bytes.NewReader(cut)); err == nil {
		t.Error("truncated body accepted")
	}
	// Corrupt payload with a declared slice length beyond the buffer.
	evil := []byte{0, 0, 0, 6, byte(KindIngestBatch), 0, 0, 0, 1, 0x7E} // camera=1, len=63
	if _, err := ReadMessage(bytes.NewReader(evil)); err == nil {
		t.Error("corrupt slice length accepted")
	}
}

func TestMarshalUnknownPayload(t *testing.T) {
	if _, err := Marshal(KindRegister, struct{}{}); err == nil {
		t.Error("marshal of unknown payload type succeeded")
	}
}

func TestTimeWindowContains(t *testing.T) {
	w := TimeWindow{From: t0, To: t0.Add(time.Minute)}
	if !w.Contains(t0) || !w.Contains(t0.Add(time.Minute)) || !w.Contains(t0.Add(30*time.Second)) {
		t.Error("window should be boundary-inclusive")
	}
	if w.Contains(t0.Add(-time.Nanosecond)) || w.Contains(t0.Add(time.Minute+time.Nanosecond)) {
		t.Error("window contains out-of-range instants")
	}
}

func TestTimestampPrecision(t *testing.T) {
	// Nanosecond precision must survive the round trip.
	msg := &TrackUpdate{TrackID: 1, Time: time.Unix(1234567890, 987654321).UTC()}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, KindTrackUpdate, msg); err != nil {
		t.Fatal(err)
	}
	env, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := env.Payload.(*TrackUpdate).Time
	if !got.Equal(msg.Time) {
		t.Errorf("timestamp = %v, want %v", got, msg.Time)
	}
}

func BenchmarkMarshalIngestBatch(b *testing.B) {
	obs := make([]Observation, 100)
	feat := make([]float32, 64)
	for i := range obs {
		obs[i] = Observation{ObsID: uint64(i), Camera: 1, Time: t0, Pos: geo.Pt(1, 2), Feature: feat}
	}
	msg := &IngestBatch{Camera: 1, Observations: obs}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(KindIngestBatch, msg); err != nil {
			b.Fatal(err)
		}
	}
}
