package wire

import (
	"fmt"
	"testing"
	"time"

	"stcam/internal/geo"
)

// Codec allocation benchmarks. The pooled round-trip benchmarks are the
// ISSUE-level acceptance surface: AppendMarshal into a borrowed buffer plus
// UnmarshalInto a reused struct must stay ≤2 allocs/op steady-state on the
// IngestBatch (ingest hot path) and RangeResult (gather hot path) shapes.
// The value-path benchmarks measure the same messages through Marshal /
// Unmarshal for comparison; internal/bench.R20CodecAlloc measures both paths
// with a runtime.MemStats delta and cmd/benchdiff gates the pooled allocs/op
// ceiling against BENCH_CI.json.

// benchIngestBatch mirrors a steady-state ingester lane frame: a full sender
// batch of featured observations.
func benchIngestBatch(n int) *IngestBatch {
	t0 := time.Unix(1700000000, 0).UTC()
	b := &IngestBatch{Camera: 7, Source: "ingest-bench", Seq: 42}
	for i := 0; i < n; i++ {
		b.Observations = append(b.Observations, Observation{
			ObsID:   uint64(i) + 1,
			Camera:  uint32(i % 16),
			Time:    t0.Add(time.Duration(i) * time.Millisecond),
			Pos:     geo.Pt(float64(i%100), float64(i%37)),
			Feature: []float32{float32(i), 0.5, -1.25, float32(i) * 0.01},
		})
	}
	return b
}

// benchRangeResult mirrors a worker's gather response for a busy range query.
func benchRangeResult(n int) *RangeResult {
	t0 := time.Unix(1700000000, 0).UTC()
	r := &RangeResult{QueryID: 99, Asked: 8, Answered: 8}
	for i := 0; i < n; i++ {
		r.Records = append(r.Records, ResultRecord{
			ObsID:    uint64(i) + 1,
			TargetID: uint64(i % 5),
			Camera:   uint32(i % 16),
			Pos:      geo.Pt(float64(i%200), float64(i%53)),
			Time:     t0.Add(time.Duration(i) * time.Second),
		})
	}
	return r
}

func benchRoundTripPooled(b *testing.B, kind MsgKind, msg any, reused any) {
	b.Helper()
	// Warm the pool and the reused struct's internal capacity so the loop
	// measures steady state, not first-touch growth.
	buf := BorrowBuf()
	frame, err := AppendMarshal(buf.B[:0], kind, msg)
	if err != nil {
		b.Fatal(err)
	}
	buf.B = frame
	if err := UnmarshalInto(kind, frame, reused); err != nil {
		b.Fatal(err)
	}
	buf.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := BorrowBuf()
		frame, err := AppendMarshal(buf.B[:0], kind, msg)
		if err != nil {
			b.Fatal(err)
		}
		buf.B = frame
		if err := UnmarshalInto(kind, frame, reused); err != nil {
			b.Fatal(err)
		}
		buf.Release()
	}
}

func benchRoundTripValue(b *testing.B, kind MsgKind, msg any) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := Marshal(kind, msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Unmarshal(kind, enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestBatchRoundTrip(b *testing.B) {
	for _, n := range []int{16, 256} {
		msg := benchIngestBatch(n)
		b.Run(fmt.Sprintf("pooled/obs=%d", n), func(b *testing.B) {
			benchRoundTripPooled(b, KindIngestBatch, msg, &IngestBatch{})
		})
		b.Run(fmt.Sprintf("value/obs=%d", n), func(b *testing.B) {
			benchRoundTripValue(b, KindIngestBatch, msg)
		})
	}
}

func BenchmarkRangeResultRoundTrip(b *testing.B) {
	for _, n := range []int{16, 256} {
		msg := benchRangeResult(n)
		b.Run(fmt.Sprintf("pooled/rec=%d", n), func(b *testing.B) {
			benchRoundTripPooled(b, KindRangeResult, msg, &RangeResult{})
		})
		b.Run(fmt.Sprintf("value/rec=%d", n), func(b *testing.B) {
			benchRoundTripValue(b, KindRangeResult, msg)
		})
	}
}
