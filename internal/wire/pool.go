package wire

import (
	"sync"
	"sync/atomic"
)

// Pooled encode/read scratch buffers. Every hot path that frames a message —
// the TCP writer, the TCP reader, WriteMessage, the in-proc wire-format
// round-trip — borrows a Buf, appends into it, and releases it once the bytes
// have been copied out (written to the socket, or decoded into structs). At
// steady state the pool serves every borrow without allocating, which is what
// takes the per-message cost of the codec to near zero.
//
// Ownership contract: between BorrowBuf and Release the caller owns b.B
// exclusively. Release hands the backing array back to the pool, so the
// caller must not retain or mutate any slice of b.B afterwards — the decoder
// upholds the same rule by never aliasing decoded messages into its input
// buffer (TestPoolDecodeNeverAliases locks this in).

// maxPooledBuf caps the capacity the pool retains. Frames larger than this
// (rare megabyte-range coalesced batches) are served normally but their
// backing arrays are dropped on Release instead of pinning the pool.
const maxPooledBuf = 1 << 20

// Buf is a pooled byte buffer. B is exported because every user is an
// append-style encoder: borrow, `b.B = append-result`, write, release.
type Buf struct {
	B []byte
}

var bufPool sync.Pool

// Pool hit-rate accounting: borrows counts BorrowBuf calls, misses counts the
// ones the pool could not serve (a fresh allocation). Their difference is the
// hit count; under steady load borrows grows while misses stays flat.
var (
	poolBorrows atomic.Uint64
	poolMisses  atomic.Uint64
)

// BorrowBuf returns an empty buffer from the pool (length 0, capacity
// whatever its previous life grew it to). Release it when done.
func BorrowBuf() *Buf {
	poolBorrows.Add(1)
	if v := bufPool.Get(); v != nil {
		b := v.(*Buf)
		b.B = b.B[:0]
		return b
	}
	poolMisses.Add(1)
	return &Buf{B: make([]byte, 0, 4096)}
}

// Grow resizes the buffer to exactly n bytes (contents undefined) and returns
// it, reusing capacity when possible. It is the read-side companion to
// append-style encoding: size a frame body, then io.ReadFull into it.
func (b *Buf) Grow(n int) []byte {
	if cap(b.B) < n {
		b.B = make([]byte, n)
	}
	b.B = b.B[:n]
	return b.B
}

// Release returns the buffer to the pool. The caller must not touch b or any
// slice of b.B afterwards. Oversized buffers are dropped so one huge frame
// does not pin its backing array forever.
func (b *Buf) Release() {
	if b == nil || cap(b.B) > maxPooledBuf {
		return
	}
	bufPool.Put(b)
}

// PoolStats reports the encode-pool hit accounting: total borrows and the
// subset that missed the pool (allocated fresh). Exposed so load tests can
// assert the pool is actually serving traffic.
func PoolStats() (borrows, misses uint64) {
	return poolBorrows.Load(), poolMisses.Load()
}
