package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"stcam/internal/geo"
)

// Generators for quick-based round-trip properties: structured random values
// for the two highest-volume messages (ingest batches and range results) and
// the full query envelope.

func randTime(rng *rand.Rand) time.Time {
	if rng.Intn(10) == 0 {
		return time.Time{} // zero times are legal on the wire
	}
	return time.Unix(rng.Int63n(4e9), rng.Int63n(1e9)).UTC()
}

func randFeature(rng *rand.Rand) []float32 {
	n := rng.Intn(8)
	if n == 0 {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32()*2 - 1
	}
	return out
}

func randObservation(rng *rand.Rand) Observation {
	return Observation{
		ObsID:   rng.Uint64(),
		Camera:  rng.Uint32(),
		Time:    randTime(rng),
		Pos:     geo.Pt(rng.NormFloat64()*1e4, rng.NormFloat64()*1e4),
		Feature: randFeature(rng),
		TrueID:  rng.Uint64(),
	}
}

func randRecord(rng *rand.Rand) ResultRecord {
	return ResultRecord{
		ObsID:    rng.Uint64(),
		TargetID: rng.Uint64(),
		Camera:   rng.Uint32(),
		Pos:      geo.Pt(rng.NormFloat64()*1e4, rng.NormFloat64()*1e4),
		Time:     randTime(rng),
	}
}

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	kind := KindOf(msg)
	var buf bytes.Buffer
	if err := WriteMessage(&buf, kind, msg); err != nil {
		t.Fatalf("write %T: %v", msg, err)
	}
	env, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("read %T: %v", msg, err)
	}
	return env.Payload
}

// randSource draws an ingest sender identity; empty (unsequenced) is a legal
// and common value.
func randSource(rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		return ""
	case 1:
		return "ingest-1"
	default:
		b := make([]byte, 1+rng.Intn(24))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
}

// TestQuickIngestBatchRoundTrip: arbitrary ingest batches survive the codec,
// including multi-camera observation sets and sequenced (Source, Seq)
// delivery stamps.
func TestQuickIngestBatchRoundTrip(t *testing.T) {
	f := func(seed int64, camID uint32, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &IngestBatch{
			Camera:    camID,
			Source:    randSource(rng),
			Seq:       rng.Uint64() >> uint(rng.Intn(64)), // includes 0 (unsequenced)
			FrameTime: randTime(rng),
		}
		for i := 0; i < int(n%32); i++ {
			m.Observations = append(m.Observations, randObservation(rng))
		}
		got := roundTrip(t, m)
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickIngestAckRoundTrip: acks with the replication and replay fields
// survive the codec.
func TestQuickIngestAckRoundTrip(t *testing.T) {
	f := func(accepted, rejected, replicated uint16, replayed bool) bool {
		m := &IngestAck{
			Accepted:   int(accepted),
			Rejected:   int(rejected),
			Replicated: int(replicated),
			Replayed:   replayed,
		}
		return reflect.DeepEqual(roundTrip(t, m), m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestIngestBatchClockOnlyRoundTrip: a pure clock tick — no camera, no
// observations, only a frame time — is a legal batch and survives the codec.
func TestIngestBatchClockOnlyRoundTrip(t *testing.T) {
	m := &IngestBatch{Source: "ingest-7", Seq: 42, FrameTime: time.Unix(1700000000, 500).UTC()}
	if got := roundTrip(t, m); !reflect.DeepEqual(got, m) {
		t.Fatalf("clock-only batch changed in transit:\n got  %#v\n want %#v", got, m)
	}
	empty := &IngestBatch{}
	if got := roundTrip(t, empty); !reflect.DeepEqual(got, empty) {
		t.Fatalf("zero batch changed in transit:\n got  %#v\n want %#v", got, empty)
	}
}

// TestIngestBatchMaxSizeRoundTrip: a coalesced batch in the megabyte range
// (every camera of a large deployment in one frame) round-trips intact, and a
// batch whose encoding exceeds MaxFrameSize is rejected with
// ErrFrameTooLarge rather than silently truncated.
func TestIngestBatchMaxSizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := &IngestBatch{Source: "ingest-max", Seq: 1, FrameTime: randTime(rng)}
	for i := 0; i < 50000; i++ {
		m.Observations = append(m.Observations, Observation{
			ObsID:  uint64(i + 1),
			Camera: uint32(i % 1024),
			Time:   time.Unix(int64(i), 0).UTC(),
			Pos:    geo.Pt(float64(i%997), float64(i%991)),
		})
	}
	body, err := Marshal(KindIngestBatch, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) < 1<<20 {
		t.Fatalf("want a megabyte-range encoding, got %d bytes", len(body))
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, KindIngestBatch, m); err != nil {
		t.Fatal(err)
	}
	env, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env.Payload, m) {
		t.Fatal("large batch changed in transit")
	}

	// One observation's feature vector pushes the frame past the cap.
	over := &IngestBatch{Observations: []Observation{{
		ObsID:   1,
		Camera:  1,
		Feature: make([]float32, MaxFrameSize/4+1),
	}}}
	if err := WriteMessage(&buf, KindIngestBatch, over); err != ErrFrameTooLarge {
		t.Fatalf("oversize batch: got %v, want ErrFrameTooLarge", err)
	}
}

// TestQuickRangeResultRoundTrip: arbitrary result sets survive the codec.
func TestQuickRangeResultRoundTrip(t *testing.T) {
	f := func(seed int64, qid uint64, n uint8, trunc bool) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &RangeResult{QueryID: qid, Truncated: trunc, Asked: rng.Intn(64), Answered: rng.Intn(64)}
		for i := 0; i < int(n%32); i++ {
			m.Records = append(m.Records, randRecord(rng))
		}
		got := roundTrip(t, m)
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickQueriesRoundTrip: arbitrary query parameters survive the codec,
// including NaN-free extreme floats and inverted windows.
func TestQuickQueriesRoundTrip(t *testing.T) {
	f := func(seed int64, qid uint64, k int16, limit int16, cell float64) bool {
		rng := rand.New(rand.NewSource(seed))
		rect := geo.Rect{
			Min: geo.Pt(rng.NormFloat64()*1e6, rng.NormFloat64()*1e6),
			Max: geo.Pt(rng.NormFloat64()*1e6, rng.NormFloat64()*1e6),
		}
		window := TimeWindow{From: randTime(rng), To: randTime(rng)}
		msgs := []any{
			&RangeQuery{QueryID: qid, Rect: rect, Window: window, Limit: int(limit)},
			&KNNQuery{QueryID: qid, Center: rect.Min, Window: window, K: int(k), MaxDist2: rng.Float64() * 1e6},
			&CountQuery{QueryID: qid, Rect: rect, Window: window},
			&HeatmapQuery{QueryID: qid, Rect: rect, Window: window, CellSize: cell},
		}
		for _, m := range msgs {
			if !reflect.DeepEqual(roundTrip(t, m), m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickHeartbeatSummaryRoundTrip: heartbeats with arbitrary piggybacked
// worker summaries — including the no-summary and empty-summary cases —
// survive the codec.
func TestQuickHeartbeatSummaryRoundTrip(t *testing.T) {
	f := func(seed int64, seq uint64, cells uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &Heartbeat{Node: "w1", Seq: seq, Load: rng.Float64() * 1e3, Stored: rng.Intn(1e6), Cameras: rng.Intn(64)}
		if rng.Intn(4) > 0 { // 1 in 4 heartbeats carries no summary
			s := &WorkerSummary{
				Epoch:    rng.Uint64() >> 32,
				Records:  rng.Intn(1e6),
				CellSize: 50 * float64(1+rng.Intn(8)),
			}
			if n := int(cells % 16); n > 0 {
				s.BucketFrom = randTime(rng)
				s.BucketWidth = time.Duration(1+rng.Intn(3600)) * time.Second
				for i := 0; i < n; i++ {
					c := SummaryCell{
						CX:    int32(rng.Intn(200) - 100),
						CY:    int32(rng.Intn(200) - 100),
						Count: rng.Int63n(1e6),
						Bounds: geo.Rect{
							Min: geo.Pt(rng.NormFloat64()*1e4, rng.NormFloat64()*1e4),
							Max: geo.Pt(rng.NormFloat64()*1e4, rng.NormFloat64()*1e4),
						},
					}
					for j := 0; j < rng.Intn(8); j++ {
						c.Buckets = append(c.Buckets, rng.Int63n(1e5))
					}
					s.Cells = append(s.Cells, c)
				}
			}
			m.Summary = s
		}
		return reflect.DeepEqual(roundTrip(t, m), m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecoderNeverPanics: the decoder must reject arbitrary garbage
// bytes with an error, never a panic or runaway allocation.
func TestQuickDecoderNeverPanics(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		body := make([]byte, int(n%2048))
		rng.Read(body)
		for kind := KindRegister; kind <= KindUnsubscribeAck; kind++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("decoder panicked on kind %v: %v", kind, r)
					}
				}()
				Unmarshal(kind, body) //nolint:errcheck // errors are expected; panics are not
			}()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickTruncationAlwaysErrors: every strict prefix of a valid encoding
// fails to decode (no silent partial reads).
func TestQuickTruncationAlwaysErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := &IngestBatch{Camera: 7, Source: "ingest-1", Seq: 3, FrameTime: randTime(rng)}
	for i := 0; i < 5; i++ {
		m.Observations = append(m.Observations, randObservation(rng))
	}
	body, err := Marshal(KindIngestBatch, m)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(body); cut++ {
		if _, err := Unmarshal(KindIngestBatch, body[:cut]); err == nil {
			// A truncation that still parses must decode to fewer
			// observations, never to corrupt data; with length-prefixed
			// slices any cut inside the payload must error.
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(body))
		}
	}
}
