package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"stcam/internal/geo"
)

// Generators for quick-based round-trip properties: structured random values
// for the two highest-volume messages (ingest batches and range results) and
// the full query envelope.

func randTime(rng *rand.Rand) time.Time {
	if rng.Intn(10) == 0 {
		return time.Time{} // zero times are legal on the wire
	}
	return time.Unix(rng.Int63n(4e9), rng.Int63n(1e9)).UTC()
}

func randFeature(rng *rand.Rand) []float32 {
	n := rng.Intn(8)
	if n == 0 {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32()*2 - 1
	}
	return out
}

func randObservation(rng *rand.Rand) Observation {
	return Observation{
		ObsID:   rng.Uint64(),
		Camera:  rng.Uint32(),
		Time:    randTime(rng),
		Pos:     geo.Pt(rng.NormFloat64()*1e4, rng.NormFloat64()*1e4),
		Feature: randFeature(rng),
		TrueID:  rng.Uint64(),
	}
}

func randRecord(rng *rand.Rand) ResultRecord {
	return ResultRecord{
		ObsID:    rng.Uint64(),
		TargetID: rng.Uint64(),
		Camera:   rng.Uint32(),
		Pos:      geo.Pt(rng.NormFloat64()*1e4, rng.NormFloat64()*1e4),
		Time:     randTime(rng),
	}
}

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	kind := KindOf(msg)
	var buf bytes.Buffer
	if err := WriteMessage(&buf, kind, msg); err != nil {
		t.Fatalf("write %T: %v", msg, err)
	}
	env, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("read %T: %v", msg, err)
	}
	return env.Payload
}

// TestQuickIngestBatchRoundTrip: arbitrary ingest batches survive the codec.
func TestQuickIngestBatchRoundTrip(t *testing.T) {
	f := func(seed int64, camID uint32, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &IngestBatch{Camera: camID, FrameTime: randTime(rng)}
		for i := 0; i < int(n%32); i++ {
			m.Observations = append(m.Observations, randObservation(rng))
		}
		got := roundTrip(t, m)
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickRangeResultRoundTrip: arbitrary result sets survive the codec.
func TestQuickRangeResultRoundTrip(t *testing.T) {
	f := func(seed int64, qid uint64, n uint8, trunc bool) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &RangeResult{QueryID: qid, Truncated: trunc, Asked: rng.Intn(64), Answered: rng.Intn(64)}
		for i := 0; i < int(n%32); i++ {
			m.Records = append(m.Records, randRecord(rng))
		}
		got := roundTrip(t, m)
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickQueriesRoundTrip: arbitrary query parameters survive the codec,
// including NaN-free extreme floats and inverted windows.
func TestQuickQueriesRoundTrip(t *testing.T) {
	f := func(seed int64, qid uint64, k int16, limit int16, cell float64) bool {
		rng := rand.New(rand.NewSource(seed))
		rect := geo.Rect{
			Min: geo.Pt(rng.NormFloat64()*1e6, rng.NormFloat64()*1e6),
			Max: geo.Pt(rng.NormFloat64()*1e6, rng.NormFloat64()*1e6),
		}
		window := TimeWindow{From: randTime(rng), To: randTime(rng)}
		msgs := []any{
			&RangeQuery{QueryID: qid, Rect: rect, Window: window, Limit: int(limit)},
			&KNNQuery{QueryID: qid, Center: rect.Min, Window: window, K: int(k)},
			&CountQuery{QueryID: qid, Rect: rect, Window: window},
			&HeatmapQuery{QueryID: qid, Rect: rect, Window: window, CellSize: cell},
		}
		for _, m := range msgs {
			if !reflect.DeepEqual(roundTrip(t, m), m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecoderNeverPanics: the decoder must reject arbitrary garbage
// bytes with an error, never a panic or runaway allocation.
func TestQuickDecoderNeverPanics(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		body := make([]byte, int(n%2048))
		rng.Read(body)
		for kind := KindRegister; kind <= KindFilterResult; kind++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("decoder panicked on kind %v: %v", kind, r)
					}
				}()
				Unmarshal(kind, body) //nolint:errcheck // errors are expected; panics are not
			}()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickTruncationAlwaysErrors: every strict prefix of a valid encoding
// fails to decode (no silent partial reads).
func TestQuickTruncationAlwaysErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := &IngestBatch{Camera: 7, FrameTime: randTime(rng)}
	for i := 0; i < 5; i++ {
		m.Observations = append(m.Observations, randObservation(rng))
	}
	body, err := Marshal(KindIngestBatch, m)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(body); cut++ {
		if _, err := Unmarshal(KindIngestBatch, body[:cut]); err == nil {
			// A truncation that still parses must decode to fewer
			// observations, never to corrupt data; with length-prefixed
			// slices any cut inside the payload must error.
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(body))
		}
	}
}
