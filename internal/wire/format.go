package wire

import (
	"errors"
	"fmt"
)

// Format tags one wire encoding of the message vocabulary, in the style of
// metrictank's chunk Format enum: every frame names the encoding of its
// payload, so future encodings (delta-compressed batches, dictionary-coded
// results) can coexist on the wire with the current one and be dispatched per
// frame. FormatV1 is the original hand-rolled binary encoding; for
// compatibility with pre-format peers it is emitted untagged (frames carry a
// format byte only for later formats), which keeps every v1 frame
// byte-identical to the golden frames committed under testdata/golden/.
//
// Decoding dispatches through a fixed table: an unknown format tag is a clean
// error, never a fallback to FormatV1 (mis-decoding a future encoding as v1
// would corrupt silently; FuzzUnmarshal locks the rejection in).
type Format byte

// Wire formats. Format 0 is reserved as detectably invalid.
const (
	// FormatV1 is the original encoding: big-endian fixed ints, varint
	// lengths and counters, presence-byte timestamps.
	FormatV1 Format = 1
)

// ErrUnknownFormat is returned when a frame names a format this build does
// not implement (a newer peer mid-rolling-upgrade, or corruption).
var ErrUnknownFormat = errors.New("wire: unknown format tag")

// String implements fmt.Stringer.
func (f Format) String() string {
	if fc := f.codec(); fc != nil {
		return fc.name
	}
	return fmt.Sprintf("Format(0x%02x)", byte(f))
}

// Known reports whether this build implements f.
func (f Format) Known() bool { return f.codec() != nil }

// formatCodec is one encoding's implementation: append-style marshal,
// decode-into unmarshal, and a payload factory for the value-returning path.
type formatCodec struct {
	name       string
	appendTo   func(dst []byte, kind MsgKind, payload any) ([]byte, error)
	decodeInto func(kind MsgKind, body []byte, msg any) error
	newMsg     func(kind MsgKind) any
}

// formatTable is the per-frame dispatch table, indexed by the format byte.
var formatTable = [256]*formatCodec{
	FormatV1: {
		name:       "v1",
		appendTo:   appendV1,
		decodeInto: decodeIntoV1,
		newMsg:     newMessageV1,
	},
}

func (f Format) codec() *formatCodec { return formatTable[f] }

// MarshalFormat appends the encoding of payload in format f onto dst and
// returns the extended slice. Unknown formats error.
func MarshalFormat(f Format, dst []byte, kind MsgKind, payload any) ([]byte, error) {
	fc := f.codec()
	if fc == nil {
		return dst, fmt.Errorf("%w: 0x%02x", ErrUnknownFormat, byte(f))
	}
	return fc.appendTo(dst, kind, payload)
}

// UnmarshalFormat decodes a payload of the given kind and format into a
// freshly allocated message. An unknown format tag errors — it is never
// decoded as FormatV1.
func UnmarshalFormat(f Format, kind MsgKind, body []byte) (any, error) {
	fc := f.codec()
	if fc == nil {
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknownFormat, byte(f))
	}
	msg := fc.newMsg(kind)
	if msg == nil {
		return nil, fmt.Errorf("wire: unknown message kind %d", kind)
	}
	if err := fc.decodeInto(kind, body, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// UnmarshalIntoFormat decodes a payload of the given kind and format into
// msg, reusing msg's slice capacity (see UnmarshalInto for the reuse
// contract).
func UnmarshalIntoFormat(f Format, kind MsgKind, body []byte, msg any) error {
	fc := f.codec()
	if fc == nil {
		return fmt.Errorf("%w: 0x%02x", ErrUnknownFormat, byte(f))
	}
	return fc.decodeInto(kind, body, msg)
}
