// Package wire defines the message vocabulary of the cluster protocol and the
// codec that moves it across connections. Every RPC in the framework — worker
// registration, observation ingest, query fan-out, continuous-query updates,
// tracking handoff — is one of the message types here, so the codec
// round-trip property in wire_test.go covers the entire protocol surface.
package wire

import (
	"time"

	"stcam/internal/geo"
)

// NodeID identifies a cluster node (worker or coordinator).
type NodeID string

// MsgKind enumerates the protocol messages. Kinds start at 1 so the zero
// value is detectably invalid.
type MsgKind int

// Message kinds.
const (
	KindRegister MsgKind = iota + 1
	KindRegisterAck
	KindHeartbeat
	KindHeartbeatAck
	KindIngestBatch
	KindIngestAck
	KindRangeQuery
	KindRangeResult
	KindKNNQuery
	KindKNNResult
	KindCountQuery
	KindCountResult
	KindTrajectoryQuery
	KindTrajectoryResult
	KindInstallContinuous
	KindRemoveContinuous
	KindContinuousUpdate
	KindAssignCameras
	KindAssignAck
	KindTrackStart
	KindTrackPrime
	KindTrackHandoff
	KindTrackUpdate
	KindTrackStop
	KindStatsQuery
	KindStatsResult
	KindError
	KindHeatmapQuery
	KindHeatmapResult
	KindFilterQuery
	KindFilterResult
	KindClusterStatsQuery
	KindClusterStatsResult
	KindReplicate
	KindReplicateAck
	KindLeaderQuery
	KindLeaderInfo
	KindSubscribe
	KindSubscribeAck
	KindPollUpdates
	KindPollResult
	KindUnsubscribe
	KindUnsubscribeAck
)

var kindNames = map[MsgKind]string{
	KindRegister:           "Register",
	KindRegisterAck:        "RegisterAck",
	KindHeartbeat:          "Heartbeat",
	KindHeartbeatAck:       "HeartbeatAck",
	KindIngestBatch:        "IngestBatch",
	KindIngestAck:          "IngestAck",
	KindRangeQuery:         "RangeQuery",
	KindRangeResult:        "RangeResult",
	KindKNNQuery:           "KNNQuery",
	KindKNNResult:          "KNNResult",
	KindCountQuery:         "CountQuery",
	KindCountResult:        "CountResult",
	KindTrajectoryQuery:    "TrajectoryQuery",
	KindTrajectoryResult:   "TrajectoryResult",
	KindInstallContinuous:  "InstallContinuous",
	KindRemoveContinuous:   "RemoveContinuous",
	KindContinuousUpdate:   "ContinuousUpdate",
	KindAssignCameras:      "AssignCameras",
	KindAssignAck:          "AssignAck",
	KindTrackStart:         "TrackStart",
	KindTrackPrime:         "TrackPrime",
	KindTrackHandoff:       "TrackHandoff",
	KindTrackUpdate:        "TrackUpdate",
	KindTrackStop:          "TrackStop",
	KindStatsQuery:         "StatsQuery",
	KindStatsResult:        "StatsResult",
	KindError:              "Error",
	KindHeatmapQuery:       "HeatmapQuery",
	KindHeatmapResult:      "HeatmapResult",
	KindFilterQuery:        "FilterQuery",
	KindFilterResult:       "FilterResult",
	KindClusterStatsQuery:  "ClusterStatsQuery",
	KindClusterStatsResult: "ClusterStatsResult",
	KindReplicate:          "Replicate",
	KindReplicateAck:       "ReplicateAck",
	KindLeaderQuery:        "LeaderQuery",
	KindLeaderInfo:         "LeaderInfo",
	KindSubscribe:          "Subscribe",
	KindSubscribeAck:       "SubscribeAck",
	KindPollUpdates:        "PollUpdates",
	KindPollResult:         "PollResult",
	KindUnsubscribe:        "Unsubscribe",
	KindUnsubscribeAck:     "UnsubscribeAck",
}

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "Unknown"
}

// Observation is the wire form of a detection event.
type Observation struct {
	ObsID   uint64
	Camera  uint32
	Time    time.Time
	Pos     geo.Point
	Feature []float32
	TrueID  uint64 // evaluation plumbing; zero in production traffic
}

// Register announces a worker to the coordinator.
type Register struct {
	Node     NodeID
	Addr     string
	Capacity int // relative capacity weight (1 = baseline)
}

// RegisterAck confirms registration.
type RegisterAck struct {
	Accepted bool
	Reason   string
}

// Heartbeat is the liveness and load report workers send periodically.
// Summary, when present, piggybacks the worker's spatial sketch so the
// coordinator can rank and prune query fan-out without extra RPCs.
type Heartbeat struct {
	Node    NodeID
	Seq     uint64
	Load    float64 // recent observations/second
	Stored  int     // records currently indexed
	Cameras int     // cameras currently owned
	Summary *WorkerSummary
}

// WorkerSummary is a compact sketch of the data one worker has indexed:
// per coarse spatial cell, a record count, the bounding rect of the store
// cells feeding it, and a coarse time histogram. The coordinator uses it to
// skip workers that provably hold no matching records (count/emptiness,
// rect intersection, time-bucket overlap) and to lower-bound each worker's
// nearest possible record for two-phase kNN. Bounds are conservative: they
// always contain every summarized record, so a summary can only cause
// over-querying, never a wrong prune — as long as it is current. Freshness
// is heartbeat-bounded; Epoch ties a summary to the camera-assignment epoch
// it was built under so reassignments invalidate it wholesale.
type WorkerSummary struct {
	Epoch       uint64        // assignment epoch the summary was built under
	Records     int           // total records summarized
	CellSize    float64       // coarse cell size (world units)
	BucketFrom  time.Time     // start of time bucket 0 (zero when empty)
	BucketWidth time.Duration // coarse time bucket width (0 when empty)
	Cells       []SummaryCell
}

// SummaryCell is one non-empty coarse cell of a WorkerSummary, keyed by
// integer cell coordinates (world position = cell index × cell size).
// Buckets counts records per coarse time bucket starting at the summary's
// BucketFrom; every summarized record in this cell is counted in exactly
// one bucket, so all-zero overlap with a query window proves emptiness.
type SummaryCell struct {
	CX, CY  int32
	Count   int64
	Bounds  geo.Rect // contains every record in the cell
	Buckets []int64
}

// HeartbeatAck carries the coordinator's view back (e.g. epoch changes).
type HeartbeatAck struct {
	Epoch uint64
}

// IngestBatch delivers observations to a worker. Observations may span
// multiple cameras (each Observation carries its own Camera), so an ingest
// pipeline coalesces everything a worker owns in one frame into a single
// RPC. FrameTime is the camera clock at frame capture: it advances the
// worker's observation time even when the frame contained no detections
// (Camera 0 with an empty observation list is a pure clock tick addressed to
// the worker rather than a single camera).
//
// Source and Seq make delivery idempotent: a sender that retries (the
// resilience layer is at-least-once) stamps each batch with its identity and
// a per-worker monotonically increasing sequence number. A worker applies a
// sequenced batch at most once; re-deliveries are acknowledged from the
// original outcome without touching the index. Unsequenced batches
// (Source == "" or Seq == 0) keep the plain at-least-once semantics.
type IngestBatch struct {
	Camera       uint32 // single-camera routing hint (coordinator ingest proxy); 0 for multi-camera or clock-only batches
	Source       string // sender identity scoping Seq; "" = unsequenced
	Seq          uint64 // per-(Source → worker) delivery sequence; 0 = unsequenced
	FrameTime    time.Time
	Observations []Observation
}

// IngestAck acknowledges a batch. Accepted counts observations indexed as
// the primary owner; Replicated counts standby copies; Rejected counts
// observations for cameras the worker does not hold at all. Replayed marks
// the ack of a duplicate sequenced delivery — the counts are those of the
// original application, so retried senders never double-count.
type IngestAck struct {
	Accepted   int
	Rejected   int
	Replicated int
	Replayed   bool
}

// TimeWindow is a closed time interval used by all queries.
type TimeWindow struct {
	From, To time.Time
}

// Contains reports whether t falls inside the window.
func (w TimeWindow) Contains(t time.Time) bool {
	return !t.Before(w.From) && !t.After(w.To)
}

// RangeQuery asks for observations in a rectangle and time window.
type RangeQuery struct {
	QueryID uint64
	Rect    geo.Rect
	Window  TimeWindow
	Limit   int // 0 = unlimited
}

// ResultRecord is the wire form of an indexed observation in results.
type ResultRecord struct {
	ObsID    uint64
	TargetID uint64
	Camera   uint32
	Pos      geo.Point
	Time     time.Time
}

// RangeResult returns the matching records from one worker — or, on the
// coordinator's client-facing path, the merged answer. There Asked/Answered
// report scatter completeness: how many workers the query fanned out to and
// how many answered before their deadline, so remote clients can tell a
// complete answer from one degraded by a partition. Worker→coordinator
// results leave both zero (a single node always answers for itself).
type RangeResult struct {
	QueryID   uint64
	Records   []ResultRecord
	Truncated bool
	Asked     int
	Answered  int
}

// KNNQuery asks for the k observations nearest to a point within a window.
// MaxDist2 > 0 is a pushed-down radius bound: the server may discard any
// candidate with squared distance strictly greater than MaxDist2 (the bound
// itself is inclusive, preserving ties at exactly MaxDist2).
type KNNQuery struct {
	QueryID  uint64
	Center   geo.Point
	Window   TimeWindow
	K        int
	MaxDist2 float64 // 0 = unbounded
}

// KNNRecord is a kNN result with its distance.
type KNNRecord struct {
	ResultRecord
	Dist2 float64
}

// KNNResult returns one worker's candidates — or, on the coordinator's
// client-facing path, the merged answer, where Asked/Answered report scatter
// completeness exactly as in RangeResult (workers pruned by summaries are
// not counted in Asked: they were proven empty, not skipped). Worker→
// coordinator results leave both zero.
type KNNResult struct {
	QueryID  uint64
	Records  []KNNRecord
	Asked    int
	Answered int
}

// CountQuery asks for a count of observations in a region and window.
type CountQuery struct {
	QueryID uint64
	Rect    geo.Rect
	Window  TimeWindow
}

// CountResult returns one worker's count — or, on the coordinator's
// client-facing path, the merged total with scatter completeness meta
// (see RangeResult). Worker→coordinator results leave Asked/Answered zero.
type CountResult struct {
	QueryID  uint64
	Count    int
	Asked    int
	Answered int
}

// TrajectoryQuery asks for a target's observation history.
type TrajectoryQuery struct {
	QueryID  uint64
	TargetID uint64
	Window   TimeWindow
}

// TrajectoryResult returns the target's records from one worker.
type TrajectoryResult struct {
	QueryID uint64
	Records []ResultRecord
}

// ContinuousKind distinguishes the continuous-query types.
type ContinuousKind int

// Continuous query kinds.
const (
	ContinuousRange ContinuousKind = iota + 1
	ContinuousCount
)

// InstallContinuous registers a standing query on a worker. Updates flow back
// asynchronously as ContinuousUpdate messages.
type InstallContinuous struct {
	QueryID   uint64
	Kind      ContinuousKind
	Rect      geo.Rect
	Threshold int // ContinuousCount: fire when count in Rect crosses this
}

// RemoveContinuous uninstalls a standing query.
type RemoveContinuous struct {
	QueryID uint64
}

// ContinuousUpdate is an incremental (+/-) answer delta: Positive lists
// targets entering the query answer, Negative lists targets leaving it.
type ContinuousUpdate struct {
	QueryID  uint64
	Time     time.Time
	Positive []ResultRecord
	Negative []ResultRecord
	Count    int // ContinuousCount queries: current count
}

// AssignCameras tells a worker the set of cameras it owns (full replacement).
// Cameras lists the worker's primary cameras; Replicas lists cameras whose
// streams the worker additionally ingests as a standby copy. Queries answer
// from primary data only, so replicas cost storage but never duplicate
// results; on primary failure the coordinator promotes a replica by moving
// the camera into its Cameras set, making the standby history authoritative.
type AssignCameras struct {
	Epoch    uint64
	Cameras  []CameraInfo
	Replicas []CameraInfo
}

// CameraInfo is the wire form of a camera registration.
type CameraInfo struct {
	ID      uint32
	Pos     geo.Point
	Orient  float64
	HalfFOV float64
	Range   float64
}

// AssignAck confirms a (re)assignment.
type AssignAck struct {
	Epoch    uint64
	Accepted int
}

// TrackStart asks a worker to begin tracking a target seen in one of its
// cameras, seeded with an appearance feature.
type TrackStart struct {
	TrackID uint64
	Camera  uint32
	Feature []float32
	Time    time.Time
}

// TrackPrime warns a worker that a tracked target may appear on one of its
// cameras soon (vision-graph handoff priming).
type TrackPrime struct {
	TrackID uint64
	Cameras []uint32
	Feature []float32
	Expires time.Time
}

// TrackHandoff transfers ownership of a track to the worker that now sees it.
type TrackHandoff struct {
	TrackID    uint64
	FromCamera uint32
	ToCamera   uint32
	Feature    []float32
	Time       time.Time
	Hops       int
}

// TrackUpdate streams a tracked target's position to the subscriber.
type TrackUpdate struct {
	TrackID uint64
	Camera  uint32
	Pos     geo.Point
	Time    time.Time
	Lost    bool // true when the track could not be re-acquired anywhere
}

// TrackStop cancels a track.
type TrackStop struct {
	TrackID uint64
}

// HeatmapQuery asks for an observation-density map: counts per square cell of
// the given size, over a region and time window. The aggregation runs on the
// workers; only the non-empty cells travel.
type HeatmapQuery struct {
	QueryID  uint64
	Rect     geo.Rect
	Window   TimeWindow
	CellSize float64
}

// HeatCell is one non-empty heatmap cell, keyed by integer cell coordinates
// (world position = cell index × cell size).
type HeatCell struct {
	CX, CY int32
	Count  int64
}

// HeatmapResult returns one worker's partial density map.
type HeatmapResult struct {
	QueryID  uint64
	CellSize float64
	Cells    []HeatCell
}

// FilterQuery is a multi-predicate query: a spatial range plus optional
// camera-set and target predicates. Workers plan the evaluation order
// adaptively — spatial-index-first or target-history-first — using their
// feedback-driven selectivity histogram (the adaptive-optimization design
// the spatio-temporal streaming literature calls for).
type FilterQuery struct {
	QueryID   uint64
	Rect      geo.Rect
	Window    TimeWindow
	TargetID  uint64   // 0 = any target
	Cameras   []uint32 // empty = any camera
	Limit     int
	ForcePlan string // "" = adaptive; "spatial"/"target" force a plan (ablation)
}

// FilterResult returns the matching records plus the plan each worker chose
// ("spatial" or "target"), for observability and the planner ablation.
type FilterResult struct {
	QueryID   uint64
	Records   []ResultRecord
	Plan      string
	Truncated bool
}

// StatsQuery asks a worker for its metrics snapshot.
type StatsQuery struct{}

// StatsResult returns a worker's metric values by name.
type StatsResult struct {
	Node       NodeID
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistStats
}

// HistStats is the wire summary of one latency histogram. All duration
// fields are nanoseconds.
type HistStats struct {
	Count         int64
	Sum, Min, Max int64
	P50, P95, P99 int64
}

// ClusterStatsQuery asks the coordinator for a cluster-wide scrape: its own
// registry plus a StatsQuery fan-out to every live worker, merged with the
// membership table. stcamctl stats/top ride this.
type ClusterStatsQuery struct{}

// WorkerStatsEntry pairs one worker's membership row with its scraped
// metrics. Entries for dead or unreachable workers carry membership data
// only (Scraped=false, zero Stats), so the table still shows them.
type WorkerStatsEntry struct {
	Node    NodeID
	Addr    string
	Alive   bool
	Load    float64 // recent observations/second, from the last heartbeat
	Stored  int     // records indexed, from the last heartbeat
	Cameras int     // cameras owned, from the last heartbeat
	Scraped bool    // true when the StatsQuery RPC to this worker succeeded
	Stats   StatsResult
}

// ClusterStatsResult is the coordinator's merged cluster scrape. Role,
// Leader, and LeaderAddr describe the answering coordinator's control-plane
// position ("leader" or "standby", and the leader it follows), so stcamctl
// top shows where the control plane is even when asked via a standby.
type ClusterStatsResult struct {
	Epoch       uint64
	Role        string
	Leader      NodeID
	LeaderAddr  string
	Coordinator StatsResult
	Workers     []WorkerStatsEntry
}

// ControlOp enumerates the journaled control-plane mutations. Each journal
// record carries exactly one op; the union fields of ControlRecord that the
// op does not use stay zero on the wire.
type ControlOp uint8

// Control-plane journal operations.
const (
	// OpCameras upserts camera registrations into the replicated registry.
	OpCameras ControlOp = iota + 1
	// OpAssign replaces the full camera→worker assignment (plus replica
	// placement) as of the record's epoch.
	OpAssign
	// OpTrack upserts one track-registry entry (start, ownership change,
	// recovery).
	OpTrack
	// OpTrackRemove deletes one track-registry entry (stop).
	OpTrackRemove
	// OpMember upserts one worker-membership entry, so a promoted standby
	// knows every worker's address without waiting for re-registration.
	OpMember
)

// AssignEntry is one camera's placement in an OpAssign record.
type AssignEntry struct {
	Camera   uint32
	Node     NodeID
	Replicas []NodeID
}

// TrackRecord is the replicated form of one coordinator track-registry
// entry: enough to keep the track alive across a leader failover. Position
// history (the stitched path) is deliberately not replicated — it is
// re-derivable from worker stores — so the journal stays small.
type TrackRecord struct {
	TrackID    uint64
	Owner      NodeID
	LastCamera uint32
	Feature    []float32
	LastSeen   time.Time
	Handoffs   int
}

// MemberRecord is the replicated form of one worker-membership entry.
type MemberRecord struct {
	Node     NodeID
	Addr     string
	Capacity int
}

// ControlRecord is one journaled, versioned control-plane mutation. Index is
// the journal position (contiguous from 1); Epoch is the assignment epoch in
// force after applying the record. A standby that has applied index N holds
// exactly the control state the leader had at N.
type ControlRecord struct {
	Index   uint64
	Epoch   uint64
	Op      ControlOp
	Cameras []CameraInfo  // OpCameras
	Assign  []AssignEntry // OpAssign
	Track   TrackRecord   // OpTrack / OpTrackRemove (TrackID only)
	Member  MemberRecord  // OpMember
}

// Replicate streams journal records from the leader coordinator to one
// standby. It doubles as the leader lease: the leader sends one (possibly
// empty) Replicate per lease interval, and a standby that misses leases past
// the timeout starts an election. FromIndex is the journal index of
// Records[0]; an empty Records slice is a pure lease renewal.
//
// When SnapIndex is non-zero the frame carries a full control-state snapshot
// instead of a journal tail: Records flattens the leader's entire live state
// (cameras, membership, assignment, tracks) as of journal index SnapIndex,
// and the receiver replaces its journal bookkeeping with that index. The
// leader sends a snapshot when the peer needs records it has compacted away.
type Replicate struct {
	Leader     NodeID
	LeaderAddr string
	Epoch      uint64
	Commit     uint64 // highest index durable on a majority of the group
	FromIndex  uint64
	SnapIndex  uint64 // non-zero: Records is a full-state snapshot at this index
	Records    []ControlRecord
}

// ReplicateAck reports how far a standby has applied. NeedFrom, when
// non-zero, asks the leader to resend from that index (gap detected —
// typically a standby that restarted or missed a stream segment).
type ReplicateAck struct {
	Applied  uint64
	NeedFrom uint64
}

// LeaderQuery asks any coordinator who it believes the leader is, plus its
// own replication progress. Standbys use it to rank each other during an
// election; workers and clients use it for discovery.
type LeaderQuery struct{}

// LeaderInfo is a coordinator's self-description: its identity and role,
// the leader it follows (itself when leading), and its journal progress.
type LeaderInfo struct {
	Node       NodeID
	Addr       string
	IsLeader   bool
	Leader     NodeID
	LeaderAddr string
	Epoch      uint64
	Applied    uint64
}

// Subscribe asks the serving plane for a standing continuous-query
// subscription. Subscriptions with identical (Kind, Rect, Threshold) shapes
// share one worker-side install — N subscribers to the same geofence cost one
// evaluation per observation. Tenant names the quota bucket the subscription
// is charged to ("" = the anonymous pool).
type Subscribe struct {
	Kind      ContinuousKind
	Rect      geo.Rect
	Threshold int
	Tenant    string
}

// SubscribeAck confirms a subscription: SubID is the subscriber's private
// handle for PollUpdates/Unsubscribe; QueryID identifies the shared install
// backing it; Shared counts the subscribers multiplexed onto that install,
// this one included.
type SubscribeAck struct {
	SubID   uint64
	QueryID uint64
	Shared  int
}

// PollUpdates drains a subscriber's buffered continuous-query deltas (the
// transport is request/response, so delivery is poll-based). Max bounds the
// updates returned per poll (0 = all buffered).
type PollUpdates struct {
	SubID uint64
	Max   int
}

// PollResult carries the drained deltas. Dropped is the lifetime count of
// updates lost to this subscriber's buffer overflowing; Evicted means the
// serving plane gave up on this slow consumer — the SubID is dead and the
// client must re-subscribe.
type PollResult struct {
	SubID   uint64
	Updates []ContinuousUpdate
	Dropped int64
	Evicted bool
}

// Unsubscribe ends a subscription, releasing its share of the backing
// install (the install itself is uninstalled when the last subscriber
// leaves).
type Unsubscribe struct {
	SubID uint64
}

// UnsubscribeAck reports how many subscribers still share the install.
type UnsubscribeAck struct {
	Remaining int
}

// Error is the wire form of a failed request.
type Error struct {
	Code    int
	Message string
}

// Error codes.
const (
	CodeUnknown      = 1
	CodeBadRequest   = 2
	CodeNotFound     = 3
	CodeUnavailable  = 4
	CodeWrongEpoch   = 5
	CodeCapacityFull = 6
	// CodeMustRegister is the coordinator's answer to a heartbeat from a
	// node it does not know (typically after a coordinator restart wiped
	// membership): the worker must re-send Register before its heartbeats
	// count again.
	CodeMustRegister = 7
	// CodeNotLeader is a standby coordinator's answer to control traffic
	// only the leader may handle (registration, heartbeats, tracking pushes,
	// camera registration). The error message carries the current leader's
	// address when the standby knows one, so the caller can redirect.
	CodeNotLeader = 8
	// CodeOverQuota is the serving plane's answer to a query or subscription
	// whose tenant's token bucket is empty. The request was well-formed; the
	// caller should back off and retry after its quota refills.
	CodeOverQuota = 9
	// CodeShed is the serving plane's admission-control answer under
	// overload: query traffic of the caller's priority class is being
	// dropped to protect ingest and tracking, which are never shed.
	CodeShed = 10
)
