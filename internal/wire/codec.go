package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The codec is a hand-rolled binary format rather than encoding/gob: message
// framing must be explicit for request multiplexing, the format must be
// stable across connections (gob's stream type-dictionary is per-connection
// state), and ingest batches are hot enough that reflection costs matter.
//
// Frame layout: 4-byte big-endian length, 1-byte kind, payload. The length
// covers everything after itself. If the kind byte has its high bit
// (kindFormatTag) set, a one-byte Format follows the kind and names the
// payload encoding; without the bit the payload is FormatV1. FormatV1 frames
// are always emitted untagged, so the stream stays byte-identical to the
// pre-format wire (see format.go and testdata/golden/).
//
// The codec comes in two API flavors per direction:
//
//	Marshal / Unmarshal            — value-returning, allocate per message.
//	AppendMarshal / UnmarshalInto  — append into a caller buffer / decode into
//	                                 a caller struct, reusing capacity.
//
// Hot paths pair the append flavor with pooled buffers (BorrowBuf/Release)
// for near-zero allocations per frame; see pool.go for the ownership rules.

// MaxFrameSize bounds a single frame; larger frames are rejected on both
// sides to keep a corrupt or malicious peer from forcing huge allocations.
const MaxFrameSize = 64 << 20

// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// kindFormatTag is the kind-byte flag marking that a Format byte follows the
// kind. FormatV1 frames never carry it, which keeps them byte-identical to
// the pre-format encoding; MsgKind values must therefore stay below 0x80.
const kindFormatTag = 0x80

// Envelope pairs a message kind with its decoded payload.
type Envelope struct {
	Kind    MsgKind
	Payload any
}

// Marshal encodes a payload for the given kind into a fresh buffer.
func Marshal(kind MsgKind, payload any) ([]byte, error) {
	return AppendMarshal(nil, kind, payload)
}

// AppendMarshal appends the FormatV1 encoding of payload onto dst and returns
// the extended slice. It allocates only when dst lacks capacity, so a pooled
// or reused dst makes encoding allocation-free.
func AppendMarshal(dst []byte, kind MsgKind, payload any) ([]byte, error) {
	return appendV1(dst, kind, payload)
}

// Unmarshal decodes a FormatV1 payload of the given kind into a freshly
// allocated message.
func Unmarshal(kind MsgKind, body []byte) (any, error) {
	return UnmarshalFormat(FormatV1, kind, body)
}

// UnmarshalInto decodes a FormatV1 payload of the given kind into msg,
// reusing msg's existing slice capacity (Observations, Records, Feature
// backing arrays, strings left untouched when unchanged) instead of
// allocating. msg must be a pointer to the message struct matching kind.
//
// Reuse contract: the decode overwrites msg in place, including backing
// arrays reached through it, so a struct may be handed back for reuse only
// once nothing else references its previous contents. Decoded messages never
// alias body — the input buffer may be pooled and released immediately after.
func UnmarshalInto(kind MsgKind, body []byte, msg any) error {
	return UnmarshalIntoFormat(FormatV1, kind, body, msg)
}

// AppendFrame appends one framed FormatV1 message (length, kind, payload)
// onto dst and returns the extended slice.
func AppendFrame(dst []byte, kind MsgKind, payload any) ([]byte, error) {
	return AppendFrameFormat(dst, FormatV1, kind, payload)
}

// AppendFrameFormat appends one framed message in format f onto dst.
// FormatV1 frames are emitted untagged (no format byte, kind bit clear) so
// they stay byte-identical to the pre-format wire; any other format sets
// kindFormatTag on the kind byte and inserts the format byte after it.
func AppendFrameFormat(dst []byte, f Format, kind MsgKind, payload any) ([]byte, error) {
	if byte(kind)&kindFormatTag != 0 {
		return dst, fmt.Errorf("wire: kind %d collides with format tag bit", kind)
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	if f == FormatV1 {
		dst = append(dst, byte(kind))
	} else {
		dst = append(dst, byte(kind)|kindFormatTag, byte(f))
	}
	out, err := MarshalFormat(f, dst, kind, payload)
	if err != nil {
		return dst[:start], err
	}
	size := len(out) - start - 4
	if size > MaxFrameSize {
		return out[:start], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(out[start:start+4], uint32(size))
	return out, nil
}

// WriteMessage encodes and writes one framed FormatV1 message. The frame is
// built in a pooled buffer and written with a single Write call.
func WriteMessage(w io.Writer, kind MsgKind, payload any) error {
	return WriteMessageFormat(w, FormatV1, kind, payload)
}

// WriteMessageFormat encodes and writes one framed message in format f.
func WriteMessageFormat(w io.Writer, f Format, kind MsgKind, payload any) error {
	b := BorrowBuf()
	defer b.Release()
	frame, err := AppendFrameFormat(b.B[:0], f, kind, payload)
	if err != nil {
		return err
	}
	b.B = frame
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// ReadMessage reads and decodes one framed message, dispatching on the
// frame's format tag. Unknown formats are consumed from the stream (framing
// stays aligned) but error out — they are never mis-decoded as FormatV1.
func ReadMessage(r io.Reader) (Envelope, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, err // io.EOF passes through for clean shutdown
	}
	size := binary.BigEndian.Uint32(hdr[:4])
	if size < 1 || size > MaxFrameSize {
		return Envelope{}, ErrFrameTooLarge
	}
	kb := hdr[4]
	kind := MsgKind(kb &^ kindFormatTag)
	format := FormatV1
	rest := int(size) - 1
	if kb&kindFormatTag != 0 {
		if rest < 1 {
			return Envelope{}, fmt.Errorf("wire: read format tag: %w", io.ErrUnexpectedEOF)
		}
		var fb [1]byte
		if _, err := io.ReadFull(r, fb[:]); err != nil {
			return Envelope{}, fmt.Errorf("wire: read format tag: %w", err)
		}
		format = Format(fb[0])
		rest--
	}
	b := BorrowBuf()
	defer b.Release()
	body := b.Grow(rest)
	if _, err := io.ReadFull(r, body); err != nil {
		return Envelope{}, fmt.Errorf("wire: read body: %w", err)
	}
	payload, err := UnmarshalFormat(format, kind, body)
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{Kind: kind, Payload: payload}, nil
}

// KindOf returns the MsgKind for a payload type, or 0 when unknown.
func KindOf(payload any) MsgKind {
	switch payload.(type) {
	case *Register:
		return KindRegister
	case *RegisterAck:
		return KindRegisterAck
	case *Heartbeat:
		return KindHeartbeat
	case *HeartbeatAck:
		return KindHeartbeatAck
	case *IngestBatch:
		return KindIngestBatch
	case *IngestAck:
		return KindIngestAck
	case *RangeQuery:
		return KindRangeQuery
	case *RangeResult:
		return KindRangeResult
	case *KNNQuery:
		return KindKNNQuery
	case *KNNResult:
		return KindKNNResult
	case *CountQuery:
		return KindCountQuery
	case *CountResult:
		return KindCountResult
	case *TrajectoryQuery:
		return KindTrajectoryQuery
	case *TrajectoryResult:
		return KindTrajectoryResult
	case *InstallContinuous:
		return KindInstallContinuous
	case *RemoveContinuous:
		return KindRemoveContinuous
	case *ContinuousUpdate:
		return KindContinuousUpdate
	case *AssignCameras:
		return KindAssignCameras
	case *AssignAck:
		return KindAssignAck
	case *TrackStart:
		return KindTrackStart
	case *TrackPrime:
		return KindTrackPrime
	case *TrackHandoff:
		return KindTrackHandoff
	case *TrackUpdate:
		return KindTrackUpdate
	case *TrackStop:
		return KindTrackStop
	case *HeatmapQuery:
		return KindHeatmapQuery
	case *HeatmapResult:
		return KindHeatmapResult
	case *FilterQuery:
		return KindFilterQuery
	case *FilterResult:
		return KindFilterResult
	case *StatsQuery:
		return KindStatsQuery
	case *StatsResult:
		return KindStatsResult
	case *ClusterStatsQuery:
		return KindClusterStatsQuery
	case *ClusterStatsResult:
		return KindClusterStatsResult
	case *Replicate:
		return KindReplicate
	case *ReplicateAck:
		return KindReplicateAck
	case *LeaderQuery:
		return KindLeaderQuery
	case *LeaderInfo:
		return KindLeaderInfo
	case *Subscribe:
		return KindSubscribe
	case *SubscribeAck:
		return KindSubscribeAck
	case *PollUpdates:
		return KindPollUpdates
	case *PollResult:
		return KindPollResult
	case *Unsubscribe:
		return KindUnsubscribe
	case *UnsubscribeAck:
		return KindUnsubscribeAck
	case *Error:
		return KindError
	}
	return 0
}
