package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"stcam/internal/geo"
)

// The codec is a hand-rolled binary format rather than encoding/gob: message
// framing must be explicit for request multiplexing, the format must be
// stable across connections (gob's stream type-dictionary is per-connection
// state), and ingest batches are hot enough that reflection costs matter.
//
// Frame layout: 4-byte big-endian length, 1-byte kind, payload. The length
// covers kind + payload.

// MaxFrameSize bounds a single frame; larger frames are rejected on both
// sides to keep a corrupt or malicious peer from forcing huge allocations.
const MaxFrameSize = 64 << 20

// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// Envelope pairs a message kind with its decoded payload.
type Envelope struct {
	Kind    MsgKind
	Payload any
}

// WriteMessage encodes and writes one framed message.
func WriteMessage(w io.Writer, kind MsgKind, payload any) error {
	body, err := Marshal(kind, payload)
	if err != nil {
		return err
	}
	var hdr [5]byte
	if len(body)+1 > MaxFrameSize {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = byte(kind)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// ReadMessage reads and decodes one framed message.
func ReadMessage(r io.Reader) (Envelope, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, err // io.EOF passes through for clean shutdown
	}
	size := binary.BigEndian.Uint32(hdr[:4])
	if size < 1 || size > MaxFrameSize {
		return Envelope{}, ErrFrameTooLarge
	}
	kind := MsgKind(hdr[4])
	body := make([]byte, size-1)
	if _, err := io.ReadFull(r, body); err != nil {
		return Envelope{}, fmt.Errorf("wire: read body: %w", err)
	}
	payload, err := Unmarshal(kind, body)
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{Kind: kind, Payload: payload}, nil
}

// Marshal encodes a payload for the given kind.
func Marshal(kind MsgKind, payload any) ([]byte, error) {
	e := &encoder{}
	switch m := payload.(type) {
	case *Register:
		e.str(string(m.Node))
		e.str(m.Addr)
		e.varint(int64(m.Capacity))
	case *RegisterAck:
		e.boolean(m.Accepted)
		e.str(m.Reason)
	case *Heartbeat:
		e.str(string(m.Node))
		e.u64(m.Seq)
		e.f64(m.Load)
		e.varint(int64(m.Stored))
		e.varint(int64(m.Cameras))
		e.summary(m.Summary)
	case *HeartbeatAck:
		e.u64(m.Epoch)
	case *IngestBatch:
		e.u32(m.Camera)
		e.str(m.Source)
		e.u64(m.Seq)
		e.timestamp(m.FrameTime)
		e.varint(int64(len(m.Observations)))
		for i := range m.Observations {
			e.observation(&m.Observations[i])
		}
	case *IngestAck:
		e.varint(int64(m.Accepted))
		e.varint(int64(m.Rejected))
		e.varint(int64(m.Replicated))
		e.boolean(m.Replayed)
	case *RangeQuery:
		e.u64(m.QueryID)
		e.rect(m.Rect)
		e.window(m.Window)
		e.varint(int64(m.Limit))
	case *RangeResult:
		e.u64(m.QueryID)
		e.varint(int64(len(m.Records)))
		for i := range m.Records {
			e.record(&m.Records[i])
		}
		e.boolean(m.Truncated)
		e.varint(int64(m.Asked))
		e.varint(int64(m.Answered))
	case *KNNQuery:
		e.u64(m.QueryID)
		e.point(m.Center)
		e.window(m.Window)
		e.varint(int64(m.K))
		e.f64(m.MaxDist2)
	case *KNNResult:
		e.u64(m.QueryID)
		e.varint(int64(len(m.Records)))
		for i := range m.Records {
			e.record(&m.Records[i].ResultRecord)
			e.f64(m.Records[i].Dist2)
		}
		e.varint(int64(m.Asked))
		e.varint(int64(m.Answered))
	case *CountQuery:
		e.u64(m.QueryID)
		e.rect(m.Rect)
		e.window(m.Window)
	case *CountResult:
		e.u64(m.QueryID)
		e.varint(int64(m.Count))
		e.varint(int64(m.Asked))
		e.varint(int64(m.Answered))
	case *TrajectoryQuery:
		e.u64(m.QueryID)
		e.u64(m.TargetID)
		e.window(m.Window)
	case *TrajectoryResult:
		e.u64(m.QueryID)
		e.varint(int64(len(m.Records)))
		for i := range m.Records {
			e.record(&m.Records[i])
		}
	case *InstallContinuous:
		e.u64(m.QueryID)
		e.varint(int64(m.Kind))
		e.rect(m.Rect)
		e.varint(int64(m.Threshold))
	case *RemoveContinuous:
		e.u64(m.QueryID)
	case *ContinuousUpdate:
		e.u64(m.QueryID)
		e.timestamp(m.Time)
		e.varint(int64(len(m.Positive)))
		for i := range m.Positive {
			e.record(&m.Positive[i])
		}
		e.varint(int64(len(m.Negative)))
		for i := range m.Negative {
			e.record(&m.Negative[i])
		}
		e.varint(int64(m.Count))
	case *AssignCameras:
		e.u64(m.Epoch)
		e.cameraInfos(m.Cameras)
		e.cameraInfos(m.Replicas)
	case *AssignAck:
		e.u64(m.Epoch)
		e.varint(int64(m.Accepted))
	case *TrackStart:
		e.u64(m.TrackID)
		e.u32(m.Camera)
		e.feature(m.Feature)
		e.timestamp(m.Time)
	case *TrackPrime:
		e.u64(m.TrackID)
		e.varint(int64(len(m.Cameras)))
		for _, c := range m.Cameras {
			e.u32(c)
		}
		e.feature(m.Feature)
		e.timestamp(m.Expires)
	case *TrackHandoff:
		e.u64(m.TrackID)
		e.u32(m.FromCamera)
		e.u32(m.ToCamera)
		e.feature(m.Feature)
		e.timestamp(m.Time)
		e.varint(int64(m.Hops))
	case *TrackUpdate:
		e.u64(m.TrackID)
		e.u32(m.Camera)
		e.point(m.Pos)
		e.timestamp(m.Time)
		e.boolean(m.Lost)
	case *TrackStop:
		e.u64(m.TrackID)
	case *HeatmapQuery:
		e.u64(m.QueryID)
		e.rect(m.Rect)
		e.window(m.Window)
		e.f64(m.CellSize)
	case *HeatmapResult:
		e.u64(m.QueryID)
		e.f64(m.CellSize)
		e.varint(int64(len(m.Cells)))
		for _, c := range m.Cells {
			e.varint(int64(c.CX))
			e.varint(int64(c.CY))
			e.varint(c.Count)
		}
	case *FilterQuery:
		e.u64(m.QueryID)
		e.rect(m.Rect)
		e.window(m.Window)
		e.u64(m.TargetID)
		e.varint(int64(len(m.Cameras)))
		for _, c := range m.Cameras {
			e.u32(c)
		}
		e.varint(int64(m.Limit))
		e.str(m.ForcePlan)
	case *FilterResult:
		e.u64(m.QueryID)
		e.varint(int64(len(m.Records)))
		for i := range m.Records {
			e.record(&m.Records[i])
		}
		e.str(m.Plan)
		e.boolean(m.Truncated)
	case *StatsQuery:
		// empty payload
	case *StatsResult:
		e.statsResult(m)
	case *ClusterStatsQuery:
		// empty payload
	case *ClusterStatsResult:
		e.u64(m.Epoch)
		e.str(m.Role)
		e.str(string(m.Leader))
		e.str(m.LeaderAddr)
		e.statsResult(&m.Coordinator)
		e.varint(int64(len(m.Workers)))
		for i := range m.Workers {
			w := &m.Workers[i]
			e.str(string(w.Node))
			e.str(w.Addr)
			e.boolean(w.Alive)
			e.f64(w.Load)
			e.varint(int64(w.Stored))
			e.varint(int64(w.Cameras))
			e.boolean(w.Scraped)
			e.statsResult(&w.Stats)
		}
	case *Replicate:
		e.str(string(m.Leader))
		e.str(m.LeaderAddr)
		e.u64(m.Epoch)
		e.u64(m.Commit)
		e.u64(m.FromIndex)
		e.u64(m.SnapIndex)
		e.varint(int64(len(m.Records)))
		for i := range m.Records {
			e.controlRecord(&m.Records[i])
		}
	case *ReplicateAck:
		e.u64(m.Applied)
		e.u64(m.NeedFrom)
	case *LeaderQuery:
		// empty payload
	case *LeaderInfo:
		e.str(string(m.Node))
		e.str(m.Addr)
		e.boolean(m.IsLeader)
		e.str(string(m.Leader))
		e.str(m.LeaderAddr)
		e.u64(m.Epoch)
		e.u64(m.Applied)
	case *Error:
		e.varint(int64(m.Code))
		e.str(m.Message)
	default:
		return nil, fmt.Errorf("wire: cannot marshal %T as %v", payload, kind)
	}
	return e.buf, nil
}

// Unmarshal decodes a payload of the given kind.
func Unmarshal(kind MsgKind, body []byte) (any, error) {
	d := &decoder{buf: body}
	var out any
	switch kind {
	case KindRegister:
		m := &Register{}
		m.Node = NodeID(d.str())
		m.Addr = d.str()
		m.Capacity = int(d.varint())
		out = m
	case KindRegisterAck:
		m := &RegisterAck{}
		m.Accepted = d.boolean()
		m.Reason = d.str()
		out = m
	case KindHeartbeat:
		m := &Heartbeat{}
		m.Node = NodeID(d.str())
		m.Seq = d.u64()
		m.Load = d.f64()
		m.Stored = int(d.varint())
		m.Cameras = int(d.varint())
		m.Summary = d.summary()
		out = m
	case KindHeartbeatAck:
		m := &HeartbeatAck{}
		m.Epoch = d.u64()
		out = m
	case KindIngestBatch:
		m := &IngestBatch{}
		m.Camera = d.u32()
		m.Source = d.str()
		m.Seq = d.u64()
		m.FrameTime = d.timestamp()
		n := d.sliceLen()
		if n > 0 {
			m.Observations = make([]Observation, n)
			for i := range m.Observations {
				d.observation(&m.Observations[i])
			}
		}
		out = m
	case KindIngestAck:
		m := &IngestAck{}
		m.Accepted = int(d.varint())
		m.Rejected = int(d.varint())
		m.Replicated = int(d.varint())
		m.Replayed = d.boolean()
		out = m
	case KindRangeQuery:
		m := &RangeQuery{}
		m.QueryID = d.u64()
		m.Rect = d.rect()
		m.Window = d.window()
		m.Limit = int(d.varint())
		out = m
	case KindRangeResult:
		m := &RangeResult{}
		m.QueryID = d.u64()
		n := d.sliceLen()
		if n > 0 {
			m.Records = make([]ResultRecord, n)
			for i := range m.Records {
				d.record(&m.Records[i])
			}
		}
		m.Truncated = d.boolean()
		m.Asked = int(d.varint())
		m.Answered = int(d.varint())
		out = m
	case KindKNNQuery:
		m := &KNNQuery{}
		m.QueryID = d.u64()
		m.Center = d.point()
		m.Window = d.window()
		m.K = int(d.varint())
		m.MaxDist2 = d.f64()
		out = m
	case KindKNNResult:
		m := &KNNResult{}
		m.QueryID = d.u64()
		n := d.sliceLen()
		if n > 0 {
			m.Records = make([]KNNRecord, n)
			for i := range m.Records {
				d.record(&m.Records[i].ResultRecord)
				m.Records[i].Dist2 = d.f64()
			}
		}
		m.Asked = int(d.varint())
		m.Answered = int(d.varint())
		out = m
	case KindCountQuery:
		m := &CountQuery{}
		m.QueryID = d.u64()
		m.Rect = d.rect()
		m.Window = d.window()
		out = m
	case KindCountResult:
		m := &CountResult{}
		m.QueryID = d.u64()
		m.Count = int(d.varint())
		m.Asked = int(d.varint())
		m.Answered = int(d.varint())
		out = m
	case KindTrajectoryQuery:
		m := &TrajectoryQuery{}
		m.QueryID = d.u64()
		m.TargetID = d.u64()
		m.Window = d.window()
		out = m
	case KindTrajectoryResult:
		m := &TrajectoryResult{}
		m.QueryID = d.u64()
		n := d.sliceLen()
		if n > 0 {
			m.Records = make([]ResultRecord, n)
			for i := range m.Records {
				d.record(&m.Records[i])
			}
		}
		out = m
	case KindInstallContinuous:
		m := &InstallContinuous{}
		m.QueryID = d.u64()
		m.Kind = ContinuousKind(d.varint())
		m.Rect = d.rect()
		m.Threshold = int(d.varint())
		out = m
	case KindRemoveContinuous:
		m := &RemoveContinuous{}
		m.QueryID = d.u64()
		out = m
	case KindContinuousUpdate:
		m := &ContinuousUpdate{}
		m.QueryID = d.u64()
		m.Time = d.timestamp()
		if n := d.sliceLen(); n > 0 {
			m.Positive = make([]ResultRecord, n)
			for i := range m.Positive {
				d.record(&m.Positive[i])
			}
		}
		if n := d.sliceLen(); n > 0 {
			m.Negative = make([]ResultRecord, n)
			for i := range m.Negative {
				d.record(&m.Negative[i])
			}
		}
		m.Count = int(d.varint())
		out = m
	case KindAssignCameras:
		m := &AssignCameras{}
		m.Epoch = d.u64()
		m.Cameras = d.cameraInfos()
		m.Replicas = d.cameraInfos()
		out = m
	case KindAssignAck:
		m := &AssignAck{}
		m.Epoch = d.u64()
		m.Accepted = int(d.varint())
		out = m
	case KindTrackStart:
		m := &TrackStart{}
		m.TrackID = d.u64()
		m.Camera = d.u32()
		m.Feature = d.feature()
		m.Time = d.timestamp()
		out = m
	case KindTrackPrime:
		m := &TrackPrime{}
		m.TrackID = d.u64()
		n := d.sliceLen()
		if n > 0 {
			m.Cameras = make([]uint32, n)
			for i := range m.Cameras {
				m.Cameras[i] = d.u32()
			}
		}
		m.Feature = d.feature()
		m.Expires = d.timestamp()
		out = m
	case KindTrackHandoff:
		m := &TrackHandoff{}
		m.TrackID = d.u64()
		m.FromCamera = d.u32()
		m.ToCamera = d.u32()
		m.Feature = d.feature()
		m.Time = d.timestamp()
		m.Hops = int(d.varint())
		out = m
	case KindTrackUpdate:
		m := &TrackUpdate{}
		m.TrackID = d.u64()
		m.Camera = d.u32()
		m.Pos = d.point()
		m.Time = d.timestamp()
		m.Lost = d.boolean()
		out = m
	case KindTrackStop:
		m := &TrackStop{}
		m.TrackID = d.u64()
		out = m
	case KindHeatmapQuery:
		m := &HeatmapQuery{}
		m.QueryID = d.u64()
		m.Rect = d.rect()
		m.Window = d.window()
		m.CellSize = d.f64()
		out = m
	case KindHeatmapResult:
		m := &HeatmapResult{}
		m.QueryID = d.u64()
		m.CellSize = d.f64()
		if n := d.sliceLen(); n > 0 {
			m.Cells = make([]HeatCell, n)
			for i := range m.Cells {
				m.Cells[i].CX = int32(d.varint())
				m.Cells[i].CY = int32(d.varint())
				m.Cells[i].Count = d.varint()
			}
		}
		out = m
	case KindFilterQuery:
		m := &FilterQuery{}
		m.QueryID = d.u64()
		m.Rect = d.rect()
		m.Window = d.window()
		m.TargetID = d.u64()
		if n := d.sliceLen(); n > 0 {
			m.Cameras = make([]uint32, n)
			for i := range m.Cameras {
				m.Cameras[i] = d.u32()
			}
		}
		m.Limit = int(d.varint())
		m.ForcePlan = d.str()
		out = m
	case KindFilterResult:
		m := &FilterResult{}
		m.QueryID = d.u64()
		if n := d.sliceLen(); n > 0 {
			m.Records = make([]ResultRecord, n)
			for i := range m.Records {
				d.record(&m.Records[i])
			}
		}
		m.Plan = d.str()
		m.Truncated = d.boolean()
		out = m
	case KindStatsQuery:
		out = &StatsQuery{}
	case KindStatsResult:
		m := &StatsResult{}
		d.statsResult(m)
		out = m
	case KindClusterStatsQuery:
		out = &ClusterStatsQuery{}
	case KindClusterStatsResult:
		m := &ClusterStatsResult{}
		m.Epoch = d.u64()
		m.Role = d.str()
		m.Leader = NodeID(d.str())
		m.LeaderAddr = d.str()
		d.statsResult(&m.Coordinator)
		n := d.sliceLen()
		if n > 0 {
			m.Workers = make([]WorkerStatsEntry, n)
			for i := range m.Workers {
				w := &m.Workers[i]
				w.Node = NodeID(d.str())
				w.Addr = d.str()
				w.Alive = d.boolean()
				w.Load = d.f64()
				w.Stored = int(d.varint())
				w.Cameras = int(d.varint())
				w.Scraped = d.boolean()
				d.statsResult(&w.Stats)
			}
		}
		out = m
	case KindReplicate:
		m := &Replicate{}
		m.Leader = NodeID(d.str())
		m.LeaderAddr = d.str()
		m.Epoch = d.u64()
		m.Commit = d.u64()
		m.FromIndex = d.u64()
		m.SnapIndex = d.u64()
		n := d.sliceLen()
		if n > 0 {
			m.Records = make([]ControlRecord, n)
			for i := range m.Records {
				d.controlRecord(&m.Records[i])
			}
		}
		out = m
	case KindReplicateAck:
		m := &ReplicateAck{}
		m.Applied = d.u64()
		m.NeedFrom = d.u64()
		out = m
	case KindLeaderQuery:
		out = &LeaderQuery{}
	case KindLeaderInfo:
		m := &LeaderInfo{}
		m.Node = NodeID(d.str())
		m.Addr = d.str()
		m.IsLeader = d.boolean()
		m.Leader = NodeID(d.str())
		m.LeaderAddr = d.str()
		m.Epoch = d.u64()
		m.Applied = d.u64()
		out = m
	case KindError:
		m := &Error{}
		m.Code = int(d.varint())
		m.Message = d.str()
		out = m
	default:
		return nil, fmt.Errorf("wire: unknown message kind %d", kind)
	}
	if d.err != nil {
		return nil, fmt.Errorf("wire: decode %v: %w", kind, d.err)
	}
	return out, nil
}

// KindOf returns the MsgKind for a payload type, or 0 when unknown.
func KindOf(payload any) MsgKind {
	switch payload.(type) {
	case *Register:
		return KindRegister
	case *RegisterAck:
		return KindRegisterAck
	case *Heartbeat:
		return KindHeartbeat
	case *HeartbeatAck:
		return KindHeartbeatAck
	case *IngestBatch:
		return KindIngestBatch
	case *IngestAck:
		return KindIngestAck
	case *RangeQuery:
		return KindRangeQuery
	case *RangeResult:
		return KindRangeResult
	case *KNNQuery:
		return KindKNNQuery
	case *KNNResult:
		return KindKNNResult
	case *CountQuery:
		return KindCountQuery
	case *CountResult:
		return KindCountResult
	case *TrajectoryQuery:
		return KindTrajectoryQuery
	case *TrajectoryResult:
		return KindTrajectoryResult
	case *InstallContinuous:
		return KindInstallContinuous
	case *RemoveContinuous:
		return KindRemoveContinuous
	case *ContinuousUpdate:
		return KindContinuousUpdate
	case *AssignCameras:
		return KindAssignCameras
	case *AssignAck:
		return KindAssignAck
	case *TrackStart:
		return KindTrackStart
	case *TrackPrime:
		return KindTrackPrime
	case *TrackHandoff:
		return KindTrackHandoff
	case *TrackUpdate:
		return KindTrackUpdate
	case *TrackStop:
		return KindTrackStop
	case *HeatmapQuery:
		return KindHeatmapQuery
	case *HeatmapResult:
		return KindHeatmapResult
	case *FilterQuery:
		return KindFilterQuery
	case *FilterResult:
		return KindFilterResult
	case *StatsQuery:
		return KindStatsQuery
	case *StatsResult:
		return KindStatsResult
	case *ClusterStatsQuery:
		return KindClusterStatsQuery
	case *ClusterStatsResult:
		return KindClusterStatsResult
	case *Replicate:
		return KindReplicate
	case *ReplicateAck:
		return KindReplicateAck
	case *LeaderQuery:
		return KindLeaderQuery
	case *LeaderInfo:
		return KindLeaderInfo
	case *Error:
		return KindError
	}
	return 0
}

// --- primitive encoders ---

type encoder struct {
	buf []byte
}

func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) f32(v float32) { e.u32(math.Float32bits(v)) }

func (e *encoder) boolean(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *encoder) str(s string) {
	e.varint(int64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) point(p geo.Point) {
	e.f64(p.X)
	e.f64(p.Y)
}

func (e *encoder) rect(r geo.Rect) {
	e.point(r.Min)
	e.point(r.Max)
}

func (e *encoder) timestamp(t time.Time) {
	if t.IsZero() {
		e.boolean(false)
		return
	}
	e.boolean(true)
	e.varint(t.Unix())
	e.varint(int64(t.Nanosecond()))
}

func (e *encoder) window(w TimeWindow) {
	e.timestamp(w.From)
	e.timestamp(w.To)
}

func (e *encoder) feature(f []float32) {
	e.varint(int64(len(f)))
	for _, v := range f {
		e.f32(v)
	}
}

func (e *encoder) observation(o *Observation) {
	e.u64(o.ObsID)
	e.u32(o.Camera)
	e.timestamp(o.Time)
	e.point(o.Pos)
	e.feature(o.Feature)
	e.u64(o.TrueID)
}

func (e *encoder) record(r *ResultRecord) {
	e.u64(r.ObsID)
	e.u64(r.TargetID)
	e.u32(r.Camera)
	e.point(r.Pos)
	e.timestamp(r.Time)
}

func (e *encoder) cameraInfos(cs []CameraInfo) {
	e.varint(int64(len(cs)))
	for i := range cs {
		c := &cs[i]
		e.u32(c.ID)
		e.point(c.Pos)
		e.f64(c.Orient)
		e.f64(c.HalfFOV)
		e.f64(c.Range)
	}
}

func (e *encoder) kvs(m map[string]int64) {
	e.varint(int64(len(m)))
	// Deterministic order is not required on the wire; readers rebuild maps.
	for k, v := range m {
		e.str(k)
		e.varint(v)
	}
}

func (e *encoder) histStats(m map[string]HistStats) {
	e.varint(int64(len(m)))
	for k, v := range m {
		e.str(k)
		e.varint(v.Count)
		e.varint(v.Sum)
		e.varint(v.Min)
		e.varint(v.Max)
		e.varint(v.P50)
		e.varint(v.P95)
		e.varint(v.P99)
	}
}

func (e *encoder) summary(s *WorkerSummary) {
	if s == nil {
		e.boolean(false)
		return
	}
	e.boolean(true)
	e.u64(s.Epoch)
	e.varint(int64(s.Records))
	e.f64(s.CellSize)
	e.timestamp(s.BucketFrom)
	e.varint(int64(s.BucketWidth))
	e.varint(int64(len(s.Cells)))
	for i := range s.Cells {
		c := &s.Cells[i]
		e.varint(int64(c.CX))
		e.varint(int64(c.CY))
		e.varint(c.Count)
		e.rect(c.Bounds)
		e.varint(int64(len(c.Buckets)))
		for _, b := range c.Buckets {
			e.varint(b)
		}
	}
}

func (e *encoder) statsResult(s *StatsResult) {
	e.str(string(s.Node))
	e.kvs(s.Counters)
	e.kvs(s.Gauges)
	e.histStats(s.Histograms)
}

func (e *encoder) controlRecord(r *ControlRecord) {
	e.u64(r.Index)
	e.u64(r.Epoch)
	e.varint(int64(r.Op))
	e.cameraInfos(r.Cameras)
	e.varint(int64(len(r.Assign)))
	for i := range r.Assign {
		a := &r.Assign[i]
		e.u32(a.Camera)
		e.str(string(a.Node))
		e.varint(int64(len(a.Replicas)))
		for _, n := range a.Replicas {
			e.str(string(n))
		}
	}
	e.u64(r.Track.TrackID)
	e.str(string(r.Track.Owner))
	e.u32(r.Track.LastCamera)
	e.feature(r.Track.Feature)
	e.timestamp(r.Track.LastSeen)
	e.varint(int64(r.Track.Handoffs))
	e.str(string(r.Member.Node))
	e.str(r.Member.Addr)
	e.varint(int64(r.Member.Capacity))
}

// --- primitive decoders ---

type decoder struct {
	buf []byte
	err error
}

var errShortBuffer = errors.New("short buffer")

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = errShortBuffer
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = errShortBuffer
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) f32() float32 { return math.Float32frombits(d.u32()) }

func (d *decoder) boolean() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

func (d *decoder) str() string {
	n := d.varint()
	if n < 0 || n > int64(len(d.buf)) {
		d.err = errShortBuffer
		return ""
	}
	b := d.take(int(n))
	return string(b)
}

// sliceLen reads a slice length and bounds-checks it against the remaining
// buffer so corrupt lengths cannot force huge allocations.
func (d *decoder) sliceLen() int {
	n := d.varint()
	if n < 0 || n > int64(len(d.buf)) {
		d.err = errShortBuffer
		return 0
	}
	return int(n)
}

func (d *decoder) point() geo.Point { return geo.Pt(d.f64(), d.f64()) }

func (d *decoder) rect() geo.Rect {
	return geo.Rect{Min: d.point(), Max: d.point()}
}

func (d *decoder) timestamp() time.Time {
	if !d.boolean() {
		return time.Time{}
	}
	sec := d.varint()
	nsec := d.varint()
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(sec, nsec).UTC()
}

func (d *decoder) window() TimeWindow {
	return TimeWindow{From: d.timestamp(), To: d.timestamp()}
}

func (d *decoder) feature() []float32 {
	n := d.sliceLen()
	if n == 0 {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = d.f32()
	}
	return out
}

func (d *decoder) observation(o *Observation) {
	o.ObsID = d.u64()
	o.Camera = d.u32()
	o.Time = d.timestamp()
	o.Pos = d.point()
	o.Feature = d.feature()
	o.TrueID = d.u64()
}

func (d *decoder) record(r *ResultRecord) {
	r.ObsID = d.u64()
	r.TargetID = d.u64()
	r.Camera = d.u32()
	r.Pos = d.point()
	r.Time = d.timestamp()
}

func (d *decoder) cameraInfos() []CameraInfo {
	n := d.sliceLen()
	if n == 0 {
		return nil
	}
	out := make([]CameraInfo, n)
	for i := range out {
		c := &out[i]
		c.ID = d.u32()
		c.Pos = d.point()
		c.Orient = d.f64()
		c.HalfFOV = d.f64()
		c.Range = d.f64()
	}
	return out
}

func (d *decoder) kvs() map[string]int64 {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		k := d.str()
		v := d.varint()
		if d.err != nil {
			return nil
		}
		out[k] = v
	}
	return out
}

func (d *decoder) histStats() map[string]HistStats {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make(map[string]HistStats, n)
	for i := 0; i < n; i++ {
		k := d.str()
		var v HistStats
		v.Count = d.varint()
		v.Sum = d.varint()
		v.Min = d.varint()
		v.Max = d.varint()
		v.P50 = d.varint()
		v.P95 = d.varint()
		v.P99 = d.varint()
		if d.err != nil {
			return nil
		}
		out[k] = v
	}
	return out
}

func (d *decoder) summary() *WorkerSummary {
	if !d.boolean() {
		return nil
	}
	s := &WorkerSummary{}
	s.Epoch = d.u64()
	s.Records = int(d.varint())
	s.CellSize = d.f64()
	s.BucketFrom = d.timestamp()
	s.BucketWidth = time.Duration(d.varint())
	n := d.sliceLen()
	if n > 0 {
		s.Cells = make([]SummaryCell, n)
		for i := range s.Cells {
			c := &s.Cells[i]
			c.CX = int32(d.varint())
			c.CY = int32(d.varint())
			c.Count = d.varint()
			c.Bounds = d.rect()
			if bn := d.sliceLen(); bn > 0 {
				c.Buckets = make([]int64, bn)
				for j := range c.Buckets {
					c.Buckets[j] = d.varint()
				}
			}
		}
	}
	if d.err != nil {
		return nil
	}
	return s
}

func (d *decoder) statsResult(s *StatsResult) {
	s.Node = NodeID(d.str())
	s.Counters = d.kvs()
	s.Gauges = d.kvs()
	s.Histograms = d.histStats()
}

func (d *decoder) controlRecord(r *ControlRecord) {
	r.Index = d.u64()
	r.Epoch = d.u64()
	r.Op = ControlOp(d.varint())
	r.Cameras = d.cameraInfos()
	n := d.sliceLen()
	if n > 0 {
		r.Assign = make([]AssignEntry, n)
		for i := range r.Assign {
			a := &r.Assign[i]
			a.Camera = d.u32()
			a.Node = NodeID(d.str())
			rn := d.sliceLen()
			if rn > 0 {
				a.Replicas = make([]NodeID, rn)
				for j := range a.Replicas {
					a.Replicas[j] = NodeID(d.str())
				}
			}
		}
	}
	r.Track.TrackID = d.u64()
	r.Track.Owner = NodeID(d.str())
	r.Track.LastCamera = d.u32()
	r.Track.Feature = d.feature()
	r.Track.LastSeen = d.timestamp()
	r.Track.Handoffs = int(d.varint())
	r.Member.Node = NodeID(d.str())
	r.Member.Addr = d.str()
	r.Member.Capacity = int(d.varint())
}
