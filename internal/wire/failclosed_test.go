package wire

import (
	"strings"
	"testing"
)

// TestNewMessageFailsClosedOnUnknownKind pins the factory's fail-closed
// contract over the whole kind space: every value newMessageV1 does not
// recognize must yield untyped nil, and UnmarshalFormat must convert that nil
// into an explicit "unknown message kind" error — never hand back a silently
// zero-decoded message. (Regression for the fall-open switch the failclosed
// analyzer flagged: the old code fell off the end of the switch, and the
// fail-closed behavior existed only by accident of the caller's nil check.)
func TestNewMessageFailsClosedOnUnknownKind(t *testing.T) {
	known := 0
	for k := 0; k < 256; k++ {
		kind := MsgKind(k)
		msg := newMessageV1(kind)
		if msg != nil {
			known++
			continue
		}
		got, err := UnmarshalFormat(FormatV1, kind, nil)
		if err == nil {
			t.Fatalf("kind %d: unknown kind decoded without error (got %T)", k, got)
		}
		if !strings.Contains(err.Error(), "unknown message kind") {
			t.Fatalf("kind %d: error = %q, want unknown-message-kind", k, err)
		}
		if got != nil {
			t.Fatalf("kind %d: non-nil message %T alongside error", k, got)
		}
	}
	if known == 0 {
		t.Fatal("factory recognized no kinds at all; test is vacuous")
	}
}
