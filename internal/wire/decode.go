package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"stcam/internal/geo"
)

// FormatV1 decoding. There is one decode implementation — decodeIntoV1 — and
// the value-returning path is just the same code run against a freshly
// allocated struct (newMessageV1), so the two flavors cannot drift apart.
//
// Decode-into reuses capacity reachable from msg: slices are re-sliced when
// their backing arrays are big enough (length 0 on the wire decodes to nil,
// matching the value path exactly), strings are reassigned only when the
// bytes differ (the comparison does not allocate; stable tags like Source and
// node IDs cost nothing after the first decode), and nested structs recurse
// the same way. Every field of msg is overwritten — stale contents of a
// reused struct never leak into a decode. Nothing decoded aliases the input
// buffer, so body may come from a pool and be released as soon as decode
// returns.

// decodeIntoV1 decodes a FormatV1 payload into msg, which must be a pointer
// to the message struct matching kind.
func decodeIntoV1(kind MsgKind, body []byte, msg any) error {
	if k := KindOf(msg); k != kind {
		return fmt.Errorf("wire: cannot unmarshal kind %v into %T", kind, msg)
	}
	d := decoder{buf: body}
	switch m := msg.(type) {
	case *Register:
		d.nodeInto(&m.Node)
		d.strInto(&m.Addr)
		m.Capacity = int(d.varint())
	case *RegisterAck:
		m.Accepted = d.boolean()
		d.strInto(&m.Reason)
	case *Heartbeat:
		d.nodeInto(&m.Node)
		m.Seq = d.u64()
		m.Load = d.f64()
		m.Stored = int(d.varint())
		m.Cameras = int(d.varint())
		m.Summary = d.summaryInto(m.Summary)
	case *HeartbeatAck:
		m.Epoch = d.u64()
	case *IngestBatch:
		m.Camera = d.u32()
		d.strInto(&m.Source)
		m.Seq = d.u64()
		m.FrameTime = d.timestamp()
		sliceInto(&d, &m.Observations, (*decoder).observationInto)
	case *IngestAck:
		m.Accepted = int(d.varint())
		m.Rejected = int(d.varint())
		m.Replicated = int(d.varint())
		m.Replayed = d.boolean()
	case *RangeQuery:
		m.QueryID = d.u64()
		m.Rect = d.rect()
		m.Window = d.window()
		m.Limit = int(d.varint())
	case *RangeResult:
		m.QueryID = d.u64()
		sliceInto(&d, &m.Records, (*decoder).recordInto)
		m.Truncated = d.boolean()
		m.Asked = int(d.varint())
		m.Answered = int(d.varint())
	case *KNNQuery:
		m.QueryID = d.u64()
		m.Center = d.point()
		m.Window = d.window()
		m.K = int(d.varint())
		m.MaxDist2 = d.f64()
	case *KNNResult:
		m.QueryID = d.u64()
		sliceInto(&d, &m.Records, (*decoder).knnRecordInto)
		m.Asked = int(d.varint())
		m.Answered = int(d.varint())
	case *CountQuery:
		m.QueryID = d.u64()
		m.Rect = d.rect()
		m.Window = d.window()
	case *CountResult:
		m.QueryID = d.u64()
		m.Count = int(d.varint())
		m.Asked = int(d.varint())
		m.Answered = int(d.varint())
	case *TrajectoryQuery:
		m.QueryID = d.u64()
		m.TargetID = d.u64()
		m.Window = d.window()
	case *TrajectoryResult:
		m.QueryID = d.u64()
		sliceInto(&d, &m.Records, (*decoder).recordInto)
	case *InstallContinuous:
		m.QueryID = d.u64()
		m.Kind = ContinuousKind(d.varint())
		m.Rect = d.rect()
		m.Threshold = int(d.varint())
	case *RemoveContinuous:
		m.QueryID = d.u64()
	case *ContinuousUpdate:
		d.continuousUpdateInto(m)
	case *AssignCameras:
		m.Epoch = d.u64()
		sliceInto(&d, &m.Cameras, (*decoder).cameraInfoInto)
		sliceInto(&d, &m.Replicas, (*decoder).cameraInfoInto)
	case *AssignAck:
		m.Epoch = d.u64()
		m.Accepted = int(d.varint())
	case *TrackStart:
		m.TrackID = d.u64()
		m.Camera = d.u32()
		m.Feature = d.featureInto(m.Feature)
		m.Time = d.timestamp()
	case *TrackPrime:
		m.TrackID = d.u64()
		sliceInto(&d, &m.Cameras, (*decoder).u32Into)
		m.Feature = d.featureInto(m.Feature)
		m.Expires = d.timestamp()
	case *TrackHandoff:
		m.TrackID = d.u64()
		m.FromCamera = d.u32()
		m.ToCamera = d.u32()
		m.Feature = d.featureInto(m.Feature)
		m.Time = d.timestamp()
		m.Hops = int(d.varint())
	case *TrackUpdate:
		m.TrackID = d.u64()
		m.Camera = d.u32()
		m.Pos = d.point()
		m.Time = d.timestamp()
		m.Lost = d.boolean()
	case *TrackStop:
		m.TrackID = d.u64()
	case *HeatmapQuery:
		m.QueryID = d.u64()
		m.Rect = d.rect()
		m.Window = d.window()
		m.CellSize = d.f64()
	case *HeatmapResult:
		m.QueryID = d.u64()
		m.CellSize = d.f64()
		sliceInto(&d, &m.Cells, (*decoder).heatCellInto)
	case *FilterQuery:
		m.QueryID = d.u64()
		m.Rect = d.rect()
		m.Window = d.window()
		m.TargetID = d.u64()
		sliceInto(&d, &m.Cameras, (*decoder).u32Into)
		m.Limit = int(d.varint())
		d.strInto(&m.ForcePlan)
	case *FilterResult:
		m.QueryID = d.u64()
		sliceInto(&d, &m.Records, (*decoder).recordInto)
		d.strInto(&m.Plan)
		m.Truncated = d.boolean()
	case *StatsQuery:
		// empty payload
	case *StatsResult:
		d.statsResultInto(m)
	case *ClusterStatsQuery:
		// empty payload
	case *ClusterStatsResult:
		m.Epoch = d.u64()
		d.strInto(&m.Role)
		d.nodeInto(&m.Leader)
		d.strInto(&m.LeaderAddr)
		d.statsResultInto(&m.Coordinator)
		sliceInto(&d, &m.Workers, (*decoder).workerStatsEntryInto)
	case *Replicate:
		d.nodeInto(&m.Leader)
		d.strInto(&m.LeaderAddr)
		m.Epoch = d.u64()
		m.Commit = d.u64()
		m.FromIndex = d.u64()
		m.SnapIndex = d.u64()
		sliceInto(&d, &m.Records, (*decoder).controlRecordInto)
	case *ReplicateAck:
		m.Applied = d.u64()
		m.NeedFrom = d.u64()
	case *LeaderQuery:
		// empty payload
	case *LeaderInfo:
		d.nodeInto(&m.Node)
		d.strInto(&m.Addr)
		m.IsLeader = d.boolean()
		d.nodeInto(&m.Leader)
		d.strInto(&m.LeaderAddr)
		m.Epoch = d.u64()
		m.Applied = d.u64()
	case *Subscribe:
		m.Kind = ContinuousKind(d.varint())
		m.Rect = d.rect()
		m.Threshold = int(d.varint())
		d.strInto(&m.Tenant)
	case *SubscribeAck:
		m.SubID = d.u64()
		m.QueryID = d.u64()
		m.Shared = int(d.varint())
	case *PollUpdates:
		m.SubID = d.u64()
		m.Max = int(d.varint())
	case *PollResult:
		m.SubID = d.u64()
		sliceInto(&d, &m.Updates, (*decoder).continuousUpdateInto)
		m.Dropped = d.varint()
		m.Evicted = d.boolean()
	case *Unsubscribe:
		m.SubID = d.u64()
	case *UnsubscribeAck:
		m.Remaining = int(d.varint())
	case *Error:
		m.Code = int(d.varint())
		d.strInto(&m.Message)
	default:
		return fmt.Errorf("wire: cannot unmarshal into %T", msg)
	}
	if d.err != nil {
		return fmt.Errorf("wire: decode %v: %w", kind, d.err)
	}
	return nil
}

// newMessageV1 allocates the zero message struct for a kind, or nil when the
// kind is unknown. It is the factory behind the value-returning Unmarshal.
func newMessageV1(kind MsgKind) any {
	switch kind {
	case KindRegister:
		return &Register{}
	case KindRegisterAck:
		return &RegisterAck{}
	case KindHeartbeat:
		return &Heartbeat{}
	case KindHeartbeatAck:
		return &HeartbeatAck{}
	case KindIngestBatch:
		return &IngestBatch{}
	case KindIngestAck:
		return &IngestAck{}
	case KindRangeQuery:
		return &RangeQuery{}
	case KindRangeResult:
		return &RangeResult{}
	case KindKNNQuery:
		return &KNNQuery{}
	case KindKNNResult:
		return &KNNResult{}
	case KindCountQuery:
		return &CountQuery{}
	case KindCountResult:
		return &CountResult{}
	case KindTrajectoryQuery:
		return &TrajectoryQuery{}
	case KindTrajectoryResult:
		return &TrajectoryResult{}
	case KindInstallContinuous:
		return &InstallContinuous{}
	case KindRemoveContinuous:
		return &RemoveContinuous{}
	case KindContinuousUpdate:
		return &ContinuousUpdate{}
	case KindAssignCameras:
		return &AssignCameras{}
	case KindAssignAck:
		return &AssignAck{}
	case KindTrackStart:
		return &TrackStart{}
	case KindTrackPrime:
		return &TrackPrime{}
	case KindTrackHandoff:
		return &TrackHandoff{}
	case KindTrackUpdate:
		return &TrackUpdate{}
	case KindTrackStop:
		return &TrackStop{}
	case KindHeatmapQuery:
		return &HeatmapQuery{}
	case KindHeatmapResult:
		return &HeatmapResult{}
	case KindFilterQuery:
		return &FilterQuery{}
	case KindFilterResult:
		return &FilterResult{}
	case KindStatsQuery:
		return &StatsQuery{}
	case KindStatsResult:
		return &StatsResult{}
	case KindClusterStatsQuery:
		return &ClusterStatsQuery{}
	case KindClusterStatsResult:
		return &ClusterStatsResult{}
	case KindReplicate:
		return &Replicate{}
	case KindReplicateAck:
		return &ReplicateAck{}
	case KindLeaderQuery:
		return &LeaderQuery{}
	case KindLeaderInfo:
		return &LeaderInfo{}
	case KindSubscribe:
		return &Subscribe{}
	case KindSubscribeAck:
		return &SubscribeAck{}
	case KindPollUpdates:
		return &PollUpdates{}
	case KindPollResult:
		return &PollResult{}
	case KindUnsubscribe:
		return &Unsubscribe{}
	case KindUnsubscribeAck:
		return &UnsubscribeAck{}
	case KindError:
		return &Error{}
	default:
		// Fail closed: an unknown kind yields nil, which UnmarshalFormat
		// converts to an error. Falling off the switch would decode the same
		// way today, but only by accident of the caller — the explicit
		// default is the contract (and what the failclosed analyzer checks).
		return nil
	}
}

// --- primitive decoders ---

type decoder struct {
	buf []byte
	err error
}

var errShortBuffer = errors.New("short buffer")

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = errShortBuffer
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = errShortBuffer
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) f32() float32 { return math.Float32frombits(d.u32()) }

func (d *decoder) boolean() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

func (d *decoder) str() string {
	var s string
	d.strInto(&s)
	return s
}

// strInto decodes a string, writing *s only when the bytes differ from its
// current value — the comparison against the raw bytes does not allocate, so
// stable strings (source tags, node IDs, plan names) decode allocation-free
// on reused structs.
func (d *decoder) strInto(s *string) {
	n := d.varint()
	if n < 0 || n > int64(len(d.buf)) {
		d.err = errShortBuffer
		*s = ""
		return
	}
	b := d.take(int(n))
	if *s != string(b) {
		*s = string(b)
	}
}

// nodeInto is strInto for NodeID fields.
func (d *decoder) nodeInto(id *NodeID) {
	n := d.varint()
	if n < 0 || n > int64(len(d.buf)) {
		d.err = errShortBuffer
		*id = ""
		return
	}
	b := d.take(int(n))
	if string(*id) != string(b) {
		*id = NodeID(b)
	}
}

// sliceLen reads a slice length and bounds-checks it against the remaining
// buffer so corrupt lengths cannot force huge allocations.
func (d *decoder) sliceLen() int {
	n := d.varint()
	if n < 0 || n > int64(len(d.buf)) {
		d.err = errShortBuffer
		return 0
	}
	return int(n)
}

// sliceInto decodes a counted sequence into *s, reusing its backing array
// when the capacity suffices. A zero count decodes to nil — identical to the
// value-returning path, so DeepEqual between the two flavors holds. Element
// decoders overwrite every field, so stale elements never survive a reuse.
func sliceInto[T any](d *decoder, s *[]T, elem func(*decoder, *T)) {
	n := d.sliceLen()
	if n == 0 {
		*s = nil
		return
	}
	out := *s
	if cap(out) >= n {
		out = out[:n]
	} else {
		out = make([]T, n)
	}
	for i := range out {
		elem(d, &out[i])
	}
	*s = out
}

func (d *decoder) point() geo.Point { return geo.Pt(d.f64(), d.f64()) }

func (d *decoder) rect() geo.Rect {
	return geo.Rect{Min: d.point(), Max: d.point()}
}

func (d *decoder) timestamp() time.Time {
	if !d.boolean() {
		return time.Time{}
	}
	sec := d.varint()
	nsec := d.varint()
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(sec, nsec).UTC()
}

func (d *decoder) window() TimeWindow {
	return TimeWindow{From: d.timestamp(), To: d.timestamp()}
}

func (d *decoder) feature() []float32 {
	return d.featureInto(nil)
}

// featureInto decodes a feature vector reusing f's backing array when it is
// large enough. Zero length decodes to nil.
func (d *decoder) featureInto(f []float32) []float32 {
	n := d.sliceLen()
	if n == 0 {
		return nil
	}
	if cap(f) >= n {
		f = f[:n]
	} else {
		f = make([]float32, n)
	}
	for i := range f {
		f[i] = d.f32()
	}
	return f
}

func (d *decoder) u32Into(v *uint32)  { *v = d.u32() }
func (d *decoder) int64Into(v *int64) { *v = d.varint() }

func (d *decoder) observationInto(o *Observation) {
	o.ObsID = d.u64()
	o.Camera = d.u32()
	o.Time = d.timestamp()
	o.Pos = d.point()
	o.Feature = d.featureInto(o.Feature)
	o.TrueID = d.u64()
}

func (d *decoder) recordInto(r *ResultRecord) {
	r.ObsID = d.u64()
	r.TargetID = d.u64()
	r.Camera = d.u32()
	r.Pos = d.point()
	r.Time = d.timestamp()
}

// continuousUpdateInto mirrors encoder.continuousUpdate: one shared body
// decoding for standalone updates and PollResult batches.
func (d *decoder) continuousUpdateInto(m *ContinuousUpdate) {
	m.QueryID = d.u64()
	m.Time = d.timestamp()
	sliceInto(d, &m.Positive, (*decoder).recordInto)
	sliceInto(d, &m.Negative, (*decoder).recordInto)
	m.Count = int(d.varint())
}

func (d *decoder) knnRecordInto(r *KNNRecord) {
	d.recordInto(&r.ResultRecord)
	r.Dist2 = d.f64()
}

func (d *decoder) heatCellInto(c *HeatCell) {
	c.CX = int32(d.varint())
	c.CY = int32(d.varint())
	c.Count = d.varint()
}

func (d *decoder) cameraInfoInto(c *CameraInfo) {
	c.ID = d.u32()
	c.Pos = d.point()
	c.Orient = d.f64()
	c.HalfFOV = d.f64()
	c.Range = d.f64()
}

func (d *decoder) kvs() map[string]int64 {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		k := d.str()
		v := d.varint()
		if d.err != nil {
			return nil
		}
		out[k] = v
	}
	return out
}

func (d *decoder) histStats() map[string]HistStats {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make(map[string]HistStats, n)
	for i := 0; i < n; i++ {
		k := d.str()
		var v HistStats
		v.Count = d.varint()
		v.Sum = d.varint()
		v.Min = d.varint()
		v.Max = d.varint()
		v.P50 = d.varint()
		v.P95 = d.varint()
		v.P99 = d.varint()
		if d.err != nil {
			return nil
		}
		out[k] = v
	}
	return out
}

func (d *decoder) summaryCellInto(c *SummaryCell) {
	c.CX = int32(d.varint())
	c.CY = int32(d.varint())
	c.Count = d.varint()
	c.Bounds = d.rect()
	sliceInto(d, &c.Buckets, (*decoder).int64Into)
}

// summaryInto decodes the optional worker summary, reusing s (including its
// cell and bucket arrays) when the wire carries one and s is non-nil.
func (d *decoder) summaryInto(s *WorkerSummary) *WorkerSummary {
	if !d.boolean() {
		return nil
	}
	if s == nil {
		s = &WorkerSummary{}
	}
	s.Epoch = d.u64()
	s.Records = int(d.varint())
	s.CellSize = d.f64()
	s.BucketFrom = d.timestamp()
	s.BucketWidth = time.Duration(d.varint())
	sliceInto(d, &s.Cells, (*decoder).summaryCellInto)
	if d.err != nil {
		return nil
	}
	return s
}

func (d *decoder) statsResultInto(s *StatsResult) {
	d.nodeInto(&s.Node)
	s.Counters = d.kvs()
	s.Gauges = d.kvs()
	s.Histograms = d.histStats()
}

func (d *decoder) workerStatsEntryInto(w *WorkerStatsEntry) {
	d.nodeInto(&w.Node)
	d.strInto(&w.Addr)
	w.Alive = d.boolean()
	w.Load = d.f64()
	w.Stored = int(d.varint())
	w.Cameras = int(d.varint())
	w.Scraped = d.boolean()
	d.statsResultInto(&w.Stats)
}

func (d *decoder) assignEntryInto(a *AssignEntry) {
	a.Camera = d.u32()
	d.nodeInto(&a.Node)
	sliceInto(d, &a.Replicas, (*decoder).nodeInto)
}

func (d *decoder) controlRecordInto(r *ControlRecord) {
	r.Index = d.u64()
	r.Epoch = d.u64()
	r.Op = ControlOp(d.varint())
	sliceInto(d, &r.Cameras, (*decoder).cameraInfoInto)
	sliceInto(d, &r.Assign, (*decoder).assignEntryInto)
	r.Track.TrackID = d.u64()
	d.nodeInto(&r.Track.Owner)
	r.Track.LastCamera = d.u32()
	r.Track.Feature = d.featureInto(r.Track.Feature)
	r.Track.LastSeen = d.timestamp()
	r.Track.Handoffs = int(d.varint())
	d.nodeInto(&r.Member.Node)
	d.strInto(&r.Member.Addr)
	r.Member.Capacity = int(d.varint())
}
