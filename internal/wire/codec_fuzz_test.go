package wire

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"
)

// FuzzUnmarshal throws arbitrary (format, kind, body) triples at the codec's
// dispatch layer: UnmarshalFormat must either return a value or an error —
// never panic, never over-allocate on a hostile length prefix, and NEVER
// decode an unknown format tag as if it were FormatV1 (a future encoding
// mis-read as v1 would corrupt silently; erroring is the only safe answer).
// Anything FormatV1 does accept must survive a Marshal/Unmarshal round trip
// unchanged. The corpus is seeded from the committed golden frames, so every
// message kind's canonical v1 payload is a fuzz starting point.
func FuzzUnmarshal(f *testing.F) {
	seed := func(kind MsgKind, payload any) {
		body, err := Marshal(kind, payload)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(int(kind), byte(FormatV1), body)
	}
	t0 := time.Unix(1700000000, 0).UTC()
	// A heartbeat carrying a spatial summary covers the sketch codec the
	// pruned scatter path depends on.
	seed(KindHeartbeat, &Heartbeat{
		Node: "w1", Seq: 9, Load: 1.5,
		Summary: &WorkerSummary{
			Epoch: 3, Records: 12, CellSize: 200,
			BucketFrom: t0, BucketWidth: time.Minute,
			Cells: []SummaryCell{{CX: -1, CY: 2, Count: 12, Buckets: []int64{3, 0, 9}}},
		},
	})
	seed(KindKNNQuery, &KNNQuery{QueryID: 7, K: 10, MaxDist2: 2500, Window: TimeWindow{From: t0, To: t0.Add(time.Hour)}})
	seed(KindKNNResult, &KNNResult{QueryID: 7, Asked: 4, Answered: 3,
		Records: []KNNRecord{{ResultRecord: ResultRecord{ObsID: 1, Time: t0}, Dist2: 9}}})
	seed(KindIngestBatch, &IngestBatch{Source: "i1", Seq: 2, Observations: []Observation{{ObsID: 1, Camera: 3, Feature: []float32{0.5}}}})
	seed(KindError, &Error{Code: 1, Message: "boom"})

	// Seed every kind's canonical payload from the committed golden frames
	// (stripping the 5-byte frame header), plus mutations of the format tag
	// so the dispatch-rejection path starts in the corpus.
	for _, fx := range goldenFixtures() {
		frame, err := os.ReadFile(goldenPath(fx.kind))
		if err != nil {
			continue // golden not generated yet; fixture seeds above still apply
		}
		if len(frame) < 5 {
			f.Fatalf("golden frame for %v shorter than a header", fx.kind)
		}
		body := frame[5:]
		f.Add(int(fx.kind), byte(FormatV1), body)
		f.Add(int(fx.kind), byte(0), body)    // reserved format 0
		f.Add(int(fx.kind), byte(0x7f), body) // far-future format
	}

	f.Fuzz(func(t *testing.T, kind int, format byte, body []byte) {
		v, err := UnmarshalFormat(Format(format), MsgKind(kind), body)
		if Format(format) != FormatV1 {
			// Unknown format: must error cleanly, and specifically with the
			// dispatch error — not fall through to a v1 decode.
			if err == nil {
				t.Fatalf("unknown format 0x%02x decoded (kind %d) instead of erroring", format, kind)
			}
			if !errors.Is(err, ErrUnknownFormat) {
				t.Fatalf("unknown format 0x%02x: got %v, want ErrUnknownFormat", format, err)
			}
			return
		}
		if err != nil {
			return
		}
		out, err := Marshal(MsgKind(kind), v)
		if err != nil {
			t.Fatalf("decoded %T does not re-marshal: %v", v, err)
		}
		// The decode-into path must agree with the value path on every input
		// the value path accepts.
		into := newMessageV1(MsgKind(kind))
		if err := UnmarshalInto(MsgKind(kind), body, into); err != nil {
			t.Fatalf("value path accepted but decode-into rejected: %v", err)
		}
		outInto, err := Marshal(MsgKind(kind), into)
		if err != nil {
			t.Fatalf("decode-into result does not re-marshal: %v", err)
		}
		if !bytes.Equal(out, outInto) {
			t.Fatalf("decode-into disagrees with value decode on fuzz input:\n value %x\n into  %x", out, outInto)
		}
		v2, err := Unmarshal(MsgKind(kind), out)
		if err != nil {
			t.Fatalf("re-marshaled %T does not decode: %v", v, err)
		}
		// Compare re-encodings rather than values: DeepEqual rejects
		// NaN == NaN, but the codec preserves float bit patterns exactly,
		// so equal canonical bytes is the stronger and correct oracle.
		out2, err := Marshal(MsgKind(kind), v2)
		if err != nil {
			t.Fatalf("second re-marshal of %T failed: %v", v, err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round trip changed encoding of %T:\n first %x\nsecond %x", v, out, out2)
		}
	})
}
