package wire

import (
	"bytes"
	"testing"
	"time"
)

// FuzzUnmarshal throws arbitrary bodies at every message decoder: Unmarshal
// must either return a value or an error — never panic, never over-allocate
// on a hostile length prefix — and anything it does accept must survive a
// Marshal/Unmarshal round trip unchanged. The kind byte is fuzzed alongside
// the body so out-of-range kinds are exercised too.
func FuzzUnmarshal(f *testing.F) {
	seed := func(kind MsgKind, payload any) {
		body, err := Marshal(kind, payload)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(int(kind), body)
	}
	t0 := time.Unix(1700000000, 0).UTC()
	// A heartbeat carrying a spatial summary covers the sketch codec the
	// pruned scatter path depends on.
	seed(KindHeartbeat, &Heartbeat{
		Node: "w1", Seq: 9, Load: 1.5,
		Summary: &WorkerSummary{
			Epoch: 3, Records: 12, CellSize: 200,
			BucketFrom: t0, BucketWidth: time.Minute,
			Cells: []SummaryCell{{CX: -1, CY: 2, Count: 12, Buckets: []int64{3, 0, 9}}},
		},
	})
	seed(KindKNNQuery, &KNNQuery{QueryID: 7, K: 10, MaxDist2: 2500, Window: TimeWindow{From: t0, To: t0.Add(time.Hour)}})
	seed(KindKNNResult, &KNNResult{QueryID: 7, Asked: 4, Answered: 3,
		Records: []KNNRecord{{ResultRecord: ResultRecord{ObsID: 1, Time: t0}, Dist2: 9}}})
	seed(KindIngestBatch, &IngestBatch{Source: "i1", Seq: 2, Observations: []Observation{{ObsID: 1, Camera: 3, Feature: []float32{0.5}}}})
	seed(KindError, &Error{Code: 1, Message: "boom"})

	f.Fuzz(func(t *testing.T, kind int, body []byte) {
		v, err := Unmarshal(MsgKind(kind), body)
		if err != nil {
			return
		}
		out, err := Marshal(MsgKind(kind), v)
		if err != nil {
			t.Fatalf("decoded %T does not re-marshal: %v", v, err)
		}
		v2, err := Unmarshal(MsgKind(kind), out)
		if err != nil {
			t.Fatalf("re-marshaled %T does not decode: %v", v, err)
		}
		// Compare re-encodings rather than values: DeepEqual rejects
		// NaN == NaN, but the codec preserves float bit patterns exactly,
		// so equal canonical bytes is the stronger and correct oracle.
		out2, err := Marshal(MsgKind(kind), v2)
		if err != nil {
			t.Fatalf("second re-marshal of %T failed: %v", v, err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round trip changed encoding of %T:\n first %x\nsecond %x", v, out, out2)
		}
	})
}
