package wire

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// Differential codec suite: the value-returning paths (Marshal/Unmarshal) and
// the pooled/reuse paths (AppendMarshal into a dirty buffer, UnmarshalInto
// a dirty struct) must be indistinguishable — identical bytes out, identical
// structs in — for every message kind, including float bit patterns
// (NaN/±Inf) and the nil-vs-empty slice edge.

// encodeBoth encodes msg through both paths and fails unless the bytes are
// identical. The append path runs against a buffer pre-filled with garbage so
// any dependence on prior buffer contents shows up as a byte diff.
func encodeBoth(t *testing.T, kind MsgKind, msg any) []byte {
	t.Helper()
	old, err := Marshal(kind, msg)
	if err != nil {
		t.Fatalf("Marshal %v: %v", kind, err)
	}
	dirty := make([]byte, 0, len(old)+64)
	dirty = dirty[:cap(dirty)]
	for i := range dirty {
		dirty[i] = 0xAA
	}
	dirty = dirty[:0]
	nw, err := AppendMarshal(dirty, kind, msg)
	if err != nil {
		t.Fatalf("AppendMarshal %v: %v", kind, err)
	}
	if !bytes.Equal(old, nw) {
		t.Fatalf("%v: append path bytes differ from value path:\n old %x\n new %x", kind, old, nw)
	}
	// Appending after a prefix must preserve it and emit the same payload.
	pre := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	withPre, err := AppendMarshal(pre, kind, msg)
	if err != nil {
		t.Fatalf("AppendMarshal with prefix %v: %v", kind, err)
	}
	if !bytes.Equal(withPre[:4], pre) || !bytes.Equal(withPre[4:], old) {
		t.Fatalf("%v: prefixed append corrupted prefix or payload", kind)
	}
	return old
}

// decodeBoth decodes body through both paths — value-returning and
// decode-into a struct pre-dirtied by decoding junk of the same kind — and
// fails unless they agree. Agreement is checked by re-encoded bytes (exact
// for NaN, which DeepEqual rejects) and, when wantDeepEqual, by DeepEqual
// too (catching nil-vs-empty and aliasing mistakes byte comparison can't).
func decodeBoth(t *testing.T, kind MsgKind, body []byte, dirtyWith []byte, wantDeepEqual bool) (any, any) {
	t.Helper()
	vOld, err := Unmarshal(kind, body)
	if err != nil {
		t.Fatalf("Unmarshal %v: %v", kind, err)
	}
	vNew := newMessageV1(kind)
	if dirtyWith != nil {
		if err := UnmarshalInto(kind, dirtyWith, vNew); err != nil {
			t.Fatalf("UnmarshalInto (dirtying) %v: %v", kind, err)
		}
	}
	if err := UnmarshalInto(kind, body, vNew); err != nil {
		t.Fatalf("UnmarshalInto %v: %v", kind, err)
	}
	reOld, err := Marshal(kind, vOld)
	if err != nil {
		t.Fatalf("re-marshal old %v: %v", kind, err)
	}
	reNew, err := Marshal(kind, vNew)
	if err != nil {
		t.Fatalf("re-marshal new %v: %v", kind, err)
	}
	if !bytes.Equal(reOld, reNew) {
		t.Fatalf("%v: decode-into disagrees with value decode:\n old %x\n new %x", kind, reOld, reNew)
	}
	if wantDeepEqual && !reflect.DeepEqual(vOld, vNew) {
		t.Fatalf("%v: decode-into struct differs from value decode:\n old %#v\n new %#v", kind, vOld, vNew)
	}
	return vOld, vNew
}

// TestDifferentialEveryKind runs every golden fixture — field-rich payloads
// for all message kinds, including the NaN/±Inf observation batch — through
// both encode paths and both decode paths, with the decode-into struct
// dirtied by a second fixture pass first.
func TestDifferentialEveryKind(t *testing.T) {
	for _, fx := range goldenFixtures() {
		body := encodeBoth(t, fx.kind, fx.msg)
		// Maps make DeepEqual safe but their iteration order on the wire is
		// not canonical only for >1 entries; fixtures keep ≤1, so both
		// oracles apply. NaN fields reject DeepEqual by definition.
		decodeBoth(t, fx.kind, body, body, !fixtureHasNaN(fx.kind))
	}
}

// fixtureHasNaN reports whether a golden fixture carries NaN floats (which
// makes reflect.DeepEqual unusable for that kind).
func fixtureHasNaN(kind MsgKind) bool {
	return kind == KindIngestBatch // observation feature carries NaN/±Inf
}

// TestDifferentialFloatEdges: NaN and ±Inf must round-trip bit-exactly and
// identically on both paths wherever the vocabulary carries floats.
func TestDifferentialFloatEdges(t *testing.T) {
	nan32 := float32(math.NaN())
	msgs := []any{
		&IngestBatch{Camera: 1, Source: "s", Seq: 2, Observations: []Observation{
			{ObsID: 1, Feature: []float32{nan32, float32(math.Inf(1)), float32(math.Inf(-1)), 0}},
		}},
		&Heartbeat{Node: "w", Seq: 1, Load: math.NaN()},
		&KNNQuery{QueryID: 1, MaxDist2: math.Inf(1)},
		&KNNResult{QueryID: 1, Records: []KNNRecord{{Dist2: math.NaN()}}},
		&HeatmapQuery{QueryID: 2, CellSize: math.Inf(-1)},
	}
	for _, m := range msgs {
		kind := KindOf(m)
		body := encodeBoth(t, kind, m)
		decodeBoth(t, kind, body, nil, false)
		// The encoding itself must preserve the exact bit pattern: decode and
		// re-encode reproduces the input bytes.
		v, err := Unmarshal(kind, body)
		if err != nil {
			t.Fatal(err)
		}
		re, err := Marshal(kind, v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, re) {
			t.Fatalf("%v: NaN/Inf bit pattern not preserved:\n in  %x\n out %x", kind, body, re)
		}
	}
}

// TestDifferentialNilVsEmpty: empty and nil slices encode identically (length
// 0) and both decode paths agree on the canonical result: nil.
func TestDifferentialNilVsEmpty(t *testing.T) {
	withEmpty := &IngestBatch{Camera: 3, Source: "s", Observations: []Observation{}}
	withNil := &IngestBatch{Camera: 3, Source: "s", Observations: nil}
	be := encodeBoth(t, KindIngestBatch, withEmpty)
	bn := encodeBoth(t, KindIngestBatch, withNil)
	if !bytes.Equal(be, bn) {
		t.Fatalf("empty and nil slices encode differently:\n empty %x\n nil   %x", be, bn)
	}
	vOld, vNew := decodeBoth(t, KindIngestBatch, be, nil, true)
	if vOld.(*IngestBatch).Observations != nil || vNew.(*IngestBatch).Observations != nil {
		t.Fatal("zero-length slice must decode to nil on both paths")
	}
	// A dirty struct holding a previous non-empty slice must also land on nil
	// when the wire says zero elements — stale elements must not survive.
	reused := &IngestBatch{}
	full, err := Marshal(KindIngestBatch, &IngestBatch{Observations: []Observation{{ObsID: 9, Feature: []float32{1, 2}}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := UnmarshalInto(KindIngestBatch, full, reused); err != nil {
		t.Fatal(err)
	}
	if err := UnmarshalInto(KindIngestBatch, be, reused); err != nil {
		t.Fatal(err)
	}
	if reused.Observations != nil {
		t.Fatalf("reused struct kept stale observations: %#v", reused.Observations)
	}

	// Same property for the optional summary: a heartbeat without one must
	// nil out a reused struct's previous summary.
	hb := &Heartbeat{Node: "w", Seq: 1}
	hbFull, err := Marshal(KindHeartbeat, &Heartbeat{Node: "w", Summary: &WorkerSummary{Epoch: 1, Records: 2}})
	if err != nil {
		t.Fatal(err)
	}
	hbEmpty, err := Marshal(KindHeartbeat, hb)
	if err != nil {
		t.Fatal(err)
	}
	reusedHB := &Heartbeat{}
	if err := UnmarshalInto(KindHeartbeat, hbFull, reusedHB); err != nil {
		t.Fatal(err)
	}
	if reusedHB.Summary == nil {
		t.Fatal("expected a summary after decoding one")
	}
	if err := UnmarshalInto(KindHeartbeat, hbEmpty, reusedHB); err != nil {
		t.Fatal(err)
	}
	if reusedHB.Summary != nil {
		t.Fatal("reused heartbeat kept a stale summary")
	}
}

// TestQuickDifferentialReuse: randomized back-to-back decodes into the same
// struct. Decoding message A then message B into one struct must leave it
// exactly as a fresh decode of B — no stale elements, lengths, or strings
// leaking through the capacity reuse, in either grow or shrink direction.
func TestQuickDifferentialReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 300; iter++ {
		a := &IngestBatch{Camera: rng.Uint32(), Source: randSource(rng), Seq: rng.Uint64(), FrameTime: randTime(rng)}
		b := &IngestBatch{Camera: rng.Uint32(), Source: randSource(rng), Seq: rng.Uint64(), FrameTime: randTime(rng)}
		for i := 0; i < rng.Intn(12); i++ {
			a.Observations = append(a.Observations, randObservation(rng))
		}
		for i := 0; i < rng.Intn(12); i++ {
			b.Observations = append(b.Observations, randObservation(rng))
		}
		ba, err := Marshal(KindIngestBatch, a)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := Marshal(KindIngestBatch, b)
		if err != nil {
			t.Fatal(err)
		}
		reused := &IngestBatch{}
		if err := UnmarshalInto(KindIngestBatch, ba, reused); err != nil {
			t.Fatal(err)
		}
		if err := UnmarshalInto(KindIngestBatch, bb, reused); err != nil {
			t.Fatal(err)
		}
		fresh, err := Unmarshal(KindIngestBatch, bb)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reused, fresh) {
			t.Fatalf("iter %d: reused decode differs from fresh decode:\n reused %#v\n fresh  %#v", iter, reused, fresh)
		}
	}

	// Same property on the control-plane stream, whose records nest three
	// levels of reusable slices (cameras, assignment entries, replica lists,
	// feature vectors).
	for iter := 0; iter < 100; iter++ {
		mk := func() *Replicate {
			m := &Replicate{Leader: NodeID(randSource(rng)), LeaderAddr: randSource(rng),
				Epoch: rng.Uint64(), Commit: rng.Uint64(), FromIndex: rng.Uint64()}
			for i := 0; i < rng.Intn(5); i++ {
				r := ControlRecord{Index: rng.Uint64(), Epoch: rng.Uint64(), Op: ControlOp(rng.Intn(6))}
				for j := 0; j < rng.Intn(3); j++ {
					r.Cameras = append(r.Cameras, CameraInfo{ID: rng.Uint32(), Orient: rng.Float64()})
				}
				for j := 0; j < rng.Intn(3); j++ {
					ae := AssignEntry{Camera: rng.Uint32(), Node: NodeID(randSource(rng))}
					for k := 0; k < rng.Intn(3); k++ {
						ae.Replicas = append(ae.Replicas, NodeID(randSource(rng)))
					}
					r.Assign = append(r.Assign, ae)
				}
				r.Track.TrackID = rng.Uint64()
				r.Track.Feature = randFeature(rng)
				r.Track.LastSeen = randTime(rng)
				r.Member.Node = NodeID(randSource(rng))
				m.Records = append(m.Records, r)
			}
			return m
		}
		ba, err := Marshal(KindReplicate, mk())
		if err != nil {
			t.Fatal(err)
		}
		second := mk()
		bb, err := Marshal(KindReplicate, second)
		if err != nil {
			t.Fatal(err)
		}
		reused := &Replicate{}
		if err := UnmarshalInto(KindReplicate, ba, reused); err != nil {
			t.Fatal(err)
		}
		if err := UnmarshalInto(KindReplicate, bb, reused); err != nil {
			t.Fatal(err)
		}
		fresh, err := Unmarshal(KindReplicate, bb)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reused, fresh) {
			t.Fatalf("iter %d: reused replicate decode differs from fresh", iter)
		}
	}
}

// TestDifferentialStringReuse: the compare-before-assign string optimization
// must keep reused strings correct when the wire value changes.
func TestDifferentialStringReuse(t *testing.T) {
	mk := func(src, addr string) []byte {
		b, err := Marshal(KindRegister, &Register{Node: NodeID(src), Addr: addr, Capacity: 4})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	reused := &Register{}
	for _, step := range []struct{ node, addr string }{
		{"w1", "host-a:9000"},
		{"w1", "host-a:9000"}, // unchanged: must not flip
		{"w2", "host-b:9000"}, // changed: must update
		{"", ""},              // emptied: must clear
		{"w2-long-name-that-shrinks", "x"},
		{"w", "x"}, // shrink again
	} {
		if err := UnmarshalInto(KindRegister, mk(step.node, step.addr), reused); err != nil {
			t.Fatal(err)
		}
		if string(reused.Node) != step.node || reused.Addr != step.addr {
			t.Fatalf("string reuse corrupted decode: got (%q,%q), want (%q,%q)",
				reused.Node, reused.Addr, step.node, step.addr)
		}
	}
}

// TestUnmarshalIntoKindMismatch: handing a struct that does not match the
// kind must error, never mis-decode.
func TestUnmarshalIntoKindMismatch(t *testing.T) {
	body, err := Marshal(KindTrackStop, &TrackStop{TrackID: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := UnmarshalInto(KindTrackStop, body, &Heartbeat{}); err == nil {
		t.Fatal("kind/struct mismatch decoded without error")
	}
	if err := UnmarshalInto(KindHeartbeat, body, &TrackStop{}); err == nil {
		t.Fatal("kind/struct mismatch decoded without error")
	}
}
