package wire

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"stcam/internal/geo"
)

// The golden-frame suite freezes the v1 wire encoding: one committed frame
// per message kind under testdata/golden/, generated once from the original
// encoder. The tests assert the current encoder reproduces every committed
// frame byte for byte and the decoder accepts them, so a codec rewrite
// provably cannot break nodes speaking the old encoding mid-rolling-upgrade.
//
// Regenerate (only for a deliberate, versioned format change — never to make
// a red test green) with:
//
//	STCAM_UPDATE_GOLDEN=1 go test ./internal/wire -run TestGolden
//
// Fixtures must stay deterministic: maps may carry at most one entry (map
// iteration order is not fixed), times are pinned, and floats use explicit
// values (math.NaN() has a fixed bit pattern on every platform Go supports).

type goldenFixture struct {
	kind MsgKind
	msg  any
}

// goldenTime is the pinned timestamp base for every fixture.
var goldenTime = time.Unix(1700000000, 123456789).UTC()

// goldenFixtures returns one deterministic, field-rich payload per message
// kind. Every kind in kindNames must appear exactly once (enforced by
// TestGoldenCoversEveryKind).
func goldenFixtures() []goldenFixture {
	t0 := goldenTime
	rect := geo.Rect{Min: geo.Pt(-120.5, 35.25), Max: geo.Pt(-119.75, 36.5)}
	window := TimeWindow{From: t0, To: t0.Add(90 * time.Minute)}
	feature := []float32{0.125, -0.5, 0.75, float32(math.Inf(1))}
	records := []ResultRecord{
		{ObsID: 101, TargetID: 7, Camera: 3, Pos: geo.Pt(1.5, -2.25), Time: t0},
		{ObsID: 102, TargetID: 0, Camera: 4, Pos: geo.Pt(-0.125, 1e6), Time: time.Time{}},
	}
	cams := []CameraInfo{
		{ID: 1, Pos: geo.Pt(10, 20), Orient: 1.5, HalfFOV: 0.5, Range: 120},
		{ID: 2, Pos: geo.Pt(-30, 40.5), Orient: -2.25, HalfFOV: 0.75, Range: 80},
	}
	return []goldenFixture{
		{KindRegister, &Register{Node: "w1", Addr: "10.0.0.1:7000", Capacity: 4}},
		{KindRegisterAck, &RegisterAck{Accepted: true, Reason: "ok"}},
		{KindHeartbeat, &Heartbeat{
			Node: "w1", Seq: 42, Load: 12.5, Stored: 1000, Cameras: 8,
			Summary: &WorkerSummary{
				Epoch: 3, Records: 12, CellSize: 200,
				BucketFrom: t0, BucketWidth: time.Minute,
				Cells: []SummaryCell{
					{CX: -1, CY: 2, Count: 12, Bounds: rect, Buckets: []int64{3, 0, 9}},
					{CX: 5, CY: -7, Count: 1, Bounds: geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1, 1)}},
				},
			},
		}},
		{KindHeartbeatAck, &HeartbeatAck{Epoch: 9}},
		{KindIngestBatch, &IngestBatch{
			Camera: 3, Source: "ingest-1", Seq: 77, FrameTime: t0,
			Observations: []Observation{
				{ObsID: 1, Camera: 3, Time: t0, Pos: geo.Pt(4.5, -1.25), Feature: feature, TrueID: 11},
				{ObsID: 2, Camera: 5, Time: t0.Add(time.Second), Pos: geo.Pt(0, 0), Feature: nil, TrueID: 0},
				{ObsID: 3, Camera: 3, Time: time.Time{}, Pos: geo.Pt(math.Inf(-1), math.NaN()), Feature: []float32{float32(math.NaN())}, TrueID: 2},
			},
		}},
		{KindIngestAck, &IngestAck{Accepted: 5, Rejected: 1, Replicated: 2, Replayed: true}},
		{KindRangeQuery, &RangeQuery{QueryID: 1001, Rect: rect, Window: window, Limit: 50}},
		{KindRangeResult, &RangeResult{QueryID: 1001, Records: records, Truncated: true, Asked: 8, Answered: 7}},
		{KindKNNQuery, &KNNQuery{QueryID: 1002, Center: geo.Pt(-120, 36), Window: window, K: 10, MaxDist2: 2500}},
		{KindKNNResult, &KNNResult{QueryID: 1002, Records: []KNNRecord{
			{ResultRecord: records[0], Dist2: 9.25},
			{ResultRecord: records[1], Dist2: math.Inf(1)},
		}, Asked: 4, Answered: 3}},
		{KindCountQuery, &CountQuery{QueryID: 1003, Rect: rect, Window: window}},
		{KindCountResult, &CountResult{QueryID: 1003, Count: 12345, Asked: 4, Answered: 4}},
		{KindTrajectoryQuery, &TrajectoryQuery{QueryID: 1004, TargetID: 7, Window: window}},
		{KindTrajectoryResult, &TrajectoryResult{QueryID: 1004, Records: records}},
		{KindInstallContinuous, &InstallContinuous{QueryID: 1005, Kind: ContinuousCount, Rect: rect, Threshold: 3}},
		{KindRemoveContinuous, &RemoveContinuous{QueryID: 1005}},
		{KindContinuousUpdate, &ContinuousUpdate{
			QueryID: 1005, Time: t0,
			Positive: records[:1], Negative: records[1:], Count: 6,
		}},
		{KindAssignCameras, &AssignCameras{Epoch: 4, Cameras: cams, Replicas: cams[:1]}},
		{KindAssignAck, &AssignAck{Epoch: 4, Accepted: 2}},
		{KindTrackStart, &TrackStart{TrackID: 501, Camera: 3, Feature: feature, Time: t0}},
		{KindTrackPrime, &TrackPrime{TrackID: 501, Cameras: []uint32{3, 5, 9}, Feature: feature, Expires: t0.Add(5 * time.Second)}},
		{KindTrackHandoff, &TrackHandoff{TrackID: 501, FromCamera: 3, ToCamera: 5, Feature: feature, Time: t0, Hops: 2}},
		{KindTrackUpdate, &TrackUpdate{TrackID: 501, Camera: 5, Pos: geo.Pt(7.5, 8.25), Time: t0, Lost: false}},
		{KindTrackStop, &TrackStop{TrackID: 501}},
		{KindStatsQuery, &StatsQuery{}},
		// Wire maps are encoded in iteration order, so fixture maps carry at
		// most one entry to keep the frame deterministic.
		{KindStatsResult, &StatsResult{
			Node:       "w1",
			Counters:   map[string]int64{"ingest.accepted": 99},
			Gauges:     map[string]int64{"store.records": 1000},
			Histograms: map[string]HistStats{"rpc.call.RangeQuery": {Count: 10, Sum: 1000, Min: 5, Max: 500, P50: 50, P95: 400, P99: 490}},
		}},
		{KindError, &Error{Code: CodeNotLeader, Message: "leader is c1 @ 10.0.0.9:7100"}},
		{KindHeatmapQuery, &HeatmapQuery{QueryID: 1006, Rect: rect, Window: window, CellSize: 50}},
		{KindHeatmapResult, &HeatmapResult{QueryID: 1006, CellSize: 50, Cells: []HeatCell{
			{CX: -2, CY: 3, Count: 17},
			{CX: 0, CY: 0, Count: 1},
		}}},
		{KindFilterQuery, &FilterQuery{QueryID: 1007, Rect: rect, Window: window, TargetID: 7, Cameras: []uint32{1, 2}, Limit: 25, ForcePlan: "spatial"}},
		{KindFilterResult, &FilterResult{QueryID: 1007, Records: records, Plan: "target", Truncated: false}},
		{KindClusterStatsQuery, &ClusterStatsQuery{}},
		{KindClusterStatsResult, &ClusterStatsResult{
			Epoch: 4, Role: "leader", Leader: "c1", LeaderAddr: "10.0.0.9:7100",
			Coordinator: StatsResult{Node: "c1", Counters: map[string]int64{"scatter.asked": 12}},
			Workers: []WorkerStatsEntry{
				{Node: "w1", Addr: "10.0.0.1:7000", Alive: true, Load: 12.5, Stored: 1000, Cameras: 8, Scraped: true,
					Stats: StatsResult{Node: "w1", Gauges: map[string]int64{"store.records": 1000}}},
				{Node: "w2", Addr: "10.0.0.2:7000", Alive: false},
			},
		}},
		{KindReplicate, &Replicate{
			Leader: "c1", LeaderAddr: "10.0.0.9:7100", Epoch: 4, Commit: 17, FromIndex: 16, SnapIndex: 0,
			Records: []ControlRecord{
				{Index: 16, Epoch: 4, Op: OpAssign, Assign: []AssignEntry{
					{Camera: 1, Node: "w1", Replicas: []NodeID{"w2"}},
					{Camera: 2, Node: "w2"},
				}},
				{Index: 17, Epoch: 4, Op: OpTrack, Track: TrackRecord{
					TrackID: 501, Owner: "w1", LastCamera: 3, Feature: feature, LastSeen: t0, Handoffs: 2,
				}},
				{Index: 18, Epoch: 4, Op: OpMember, Member: MemberRecord{Node: "w3", Addr: "10.0.0.3:7000", Capacity: 2}},
				{Index: 19, Epoch: 4, Op: OpCameras, Cameras: cams},
			},
		}},
		{KindReplicateAck, &ReplicateAck{Applied: 17, NeedFrom: 12}},
		{KindLeaderQuery, &LeaderQuery{}},
		{KindLeaderInfo, &LeaderInfo{Node: "c2", Addr: "10.0.0.10:7100", IsLeader: false, Leader: "c1", LeaderAddr: "10.0.0.9:7100", Epoch: 4, Applied: 17}},
		{KindSubscribe, &Subscribe{Kind: ContinuousRange, Rect: rect, Threshold: 2, Tenant: "acme"}},
		{KindSubscribeAck, &SubscribeAck{SubID: 9001, QueryID: 1005, Shared: 64}},
		{KindPollUpdates, &PollUpdates{SubID: 9001, Max: 128}},
		{KindPollResult, &PollResult{
			SubID: 9001,
			Updates: []ContinuousUpdate{
				{QueryID: 1005, Time: t0, Positive: records[:1], Count: 3},
				{QueryID: 1005, Time: t0.Add(time.Second), Negative: records[1:], Count: 2},
			},
			Dropped: 7, Evicted: true,
		}},
		{KindUnsubscribe, &Unsubscribe{SubID: 9001}},
		{KindUnsubscribeAck, &UnsubscribeAck{Remaining: 63}},
	}
}

func goldenPath(kind MsgKind) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%02d_%s.bin", int(kind), kind))
}

// TestGoldenCoversEveryKind: the fixture list and the protocol's kind table
// must agree exactly, so adding a message kind without freezing its encoding
// fails here.
func TestGoldenCoversEveryKind(t *testing.T) {
	seen := make(map[MsgKind]bool)
	for _, fx := range goldenFixtures() {
		if seen[fx.kind] {
			t.Errorf("duplicate golden fixture for %v", fx.kind)
		}
		seen[fx.kind] = true
		if fx.kind.String() == "Unknown" {
			t.Errorf("fixture kind %d not in kindNames", int(fx.kind))
		}
		if got := KindOf(fx.msg); got != fx.kind {
			t.Errorf("fixture for %v has payload of kind %v", fx.kind, got)
		}
	}
	for kind := range kindNames {
		if !seen[kind] {
			t.Errorf("no golden fixture for %v — every wire message kind needs a committed frame", kind)
		}
	}
}

// TestGoldenEncoderByteIdentical: the current encoder must reproduce every
// committed frame byte for byte. With STCAM_UPDATE_GOLDEN set the files are
// rewritten instead (a deliberate format change).
func TestGoldenEncoderByteIdentical(t *testing.T) {
	update := os.Getenv("STCAM_UPDATE_GOLDEN") != ""
	if update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, fx := range goldenFixtures() {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, fx.kind, fx.msg); err != nil {
			t.Fatalf("encode %v: %v", fx.kind, err)
		}
		path := goldenPath(fx.kind)
		if update {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden frame for %v (run with STCAM_UPDATE_GOLDEN=1 only for a deliberate format change): %v", fx.kind, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%v: encoder output differs from committed v1 frame\n got  %x\n want %x", fx.kind, buf.Bytes(), want)
		}
	}
}

// TestGoldenDecoderAccepts: every committed frame must decode, and the
// decoded value must re-encode to exactly the committed bytes (the decoder
// preserves float bit patterns, so byte equality is the correct oracle even
// for NaN-carrying fixtures).
func TestGoldenDecoderAccepts(t *testing.T) {
	if os.Getenv("STCAM_UPDATE_GOLDEN") != "" {
		t.Skip("updating golden frames")
	}
	for _, fx := range goldenFixtures() {
		frame, err := os.ReadFile(goldenPath(fx.kind))
		if err != nil {
			t.Fatalf("%v: %v", fx.kind, err)
		}
		env, err := ReadMessage(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("decode committed %v frame: %v", fx.kind, err)
		}
		if env.Kind != fx.kind {
			t.Fatalf("committed %v frame decoded as kind %v", fx.kind, env.Kind)
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, env.Kind, env.Payload); err != nil {
			t.Fatalf("re-encode decoded %v: %v", fx.kind, err)
		}
		if !bytes.Equal(buf.Bytes(), frame) {
			t.Errorf("%v: decode→encode does not reproduce the committed frame\n got  %x\n want %x", fx.kind, buf.Bytes(), frame)
		}
	}
}
