package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"stcam/internal/geo"
)

// FormatV1 encoding. appendV1 is append-style: it extends dst in place and
// allocates only when dst lacks capacity, so hot paths can encode into pooled
// buffers with zero allocations. The byte layout is frozen by the golden
// frames under testdata/golden/ — any change here is a new Format, not an
// edit to this one.

// appendV1 appends the FormatV1 encoding of payload onto dst.
func appendV1(dst []byte, kind MsgKind, payload any) ([]byte, error) {
	e := encoder{buf: dst}
	switch m := payload.(type) {
	case *Register:
		e.str(string(m.Node))
		e.str(m.Addr)
		e.varint(int64(m.Capacity))
	case *RegisterAck:
		e.boolean(m.Accepted)
		e.str(m.Reason)
	case *Heartbeat:
		e.str(string(m.Node))
		e.u64(m.Seq)
		e.f64(m.Load)
		e.varint(int64(m.Stored))
		e.varint(int64(m.Cameras))
		e.summary(m.Summary)
	case *HeartbeatAck:
		e.u64(m.Epoch)
	case *IngestBatch:
		e.u32(m.Camera)
		e.str(m.Source)
		e.u64(m.Seq)
		e.timestamp(m.FrameTime)
		e.varint(int64(len(m.Observations)))
		for i := range m.Observations {
			e.observation(&m.Observations[i])
		}
	case *IngestAck:
		e.varint(int64(m.Accepted))
		e.varint(int64(m.Rejected))
		e.varint(int64(m.Replicated))
		e.boolean(m.Replayed)
	case *RangeQuery:
		e.u64(m.QueryID)
		e.rect(m.Rect)
		e.window(m.Window)
		e.varint(int64(m.Limit))
	case *RangeResult:
		e.u64(m.QueryID)
		e.varint(int64(len(m.Records)))
		for i := range m.Records {
			e.record(&m.Records[i])
		}
		e.boolean(m.Truncated)
		e.varint(int64(m.Asked))
		e.varint(int64(m.Answered))
	case *KNNQuery:
		e.u64(m.QueryID)
		e.point(m.Center)
		e.window(m.Window)
		e.varint(int64(m.K))
		e.f64(m.MaxDist2)
	case *KNNResult:
		e.u64(m.QueryID)
		e.varint(int64(len(m.Records)))
		for i := range m.Records {
			e.record(&m.Records[i].ResultRecord)
			e.f64(m.Records[i].Dist2)
		}
		e.varint(int64(m.Asked))
		e.varint(int64(m.Answered))
	case *CountQuery:
		e.u64(m.QueryID)
		e.rect(m.Rect)
		e.window(m.Window)
	case *CountResult:
		e.u64(m.QueryID)
		e.varint(int64(m.Count))
		e.varint(int64(m.Asked))
		e.varint(int64(m.Answered))
	case *TrajectoryQuery:
		e.u64(m.QueryID)
		e.u64(m.TargetID)
		e.window(m.Window)
	case *TrajectoryResult:
		e.u64(m.QueryID)
		e.varint(int64(len(m.Records)))
		for i := range m.Records {
			e.record(&m.Records[i])
		}
	case *InstallContinuous:
		e.u64(m.QueryID)
		e.varint(int64(m.Kind))
		e.rect(m.Rect)
		e.varint(int64(m.Threshold))
	case *RemoveContinuous:
		e.u64(m.QueryID)
	case *ContinuousUpdate:
		e.continuousUpdate(m)
	case *AssignCameras:
		e.u64(m.Epoch)
		e.cameraInfos(m.Cameras)
		e.cameraInfos(m.Replicas)
	case *AssignAck:
		e.u64(m.Epoch)
		e.varint(int64(m.Accepted))
	case *TrackStart:
		e.u64(m.TrackID)
		e.u32(m.Camera)
		e.feature(m.Feature)
		e.timestamp(m.Time)
	case *TrackPrime:
		e.u64(m.TrackID)
		e.varint(int64(len(m.Cameras)))
		for _, c := range m.Cameras {
			e.u32(c)
		}
		e.feature(m.Feature)
		e.timestamp(m.Expires)
	case *TrackHandoff:
		e.u64(m.TrackID)
		e.u32(m.FromCamera)
		e.u32(m.ToCamera)
		e.feature(m.Feature)
		e.timestamp(m.Time)
		e.varint(int64(m.Hops))
	case *TrackUpdate:
		e.u64(m.TrackID)
		e.u32(m.Camera)
		e.point(m.Pos)
		e.timestamp(m.Time)
		e.boolean(m.Lost)
	case *TrackStop:
		e.u64(m.TrackID)
	case *HeatmapQuery:
		e.u64(m.QueryID)
		e.rect(m.Rect)
		e.window(m.Window)
		e.f64(m.CellSize)
	case *HeatmapResult:
		e.u64(m.QueryID)
		e.f64(m.CellSize)
		e.varint(int64(len(m.Cells)))
		for _, c := range m.Cells {
			e.varint(int64(c.CX))
			e.varint(int64(c.CY))
			e.varint(c.Count)
		}
	case *FilterQuery:
		e.u64(m.QueryID)
		e.rect(m.Rect)
		e.window(m.Window)
		e.u64(m.TargetID)
		e.varint(int64(len(m.Cameras)))
		for _, c := range m.Cameras {
			e.u32(c)
		}
		e.varint(int64(m.Limit))
		e.str(m.ForcePlan)
	case *FilterResult:
		e.u64(m.QueryID)
		e.varint(int64(len(m.Records)))
		for i := range m.Records {
			e.record(&m.Records[i])
		}
		e.str(m.Plan)
		e.boolean(m.Truncated)
	case *StatsQuery:
		// empty payload
	case *StatsResult:
		e.statsResult(m)
	case *ClusterStatsQuery:
		// empty payload
	case *ClusterStatsResult:
		e.u64(m.Epoch)
		e.str(m.Role)
		e.str(string(m.Leader))
		e.str(m.LeaderAddr)
		e.statsResult(&m.Coordinator)
		e.varint(int64(len(m.Workers)))
		for i := range m.Workers {
			w := &m.Workers[i]
			e.str(string(w.Node))
			e.str(w.Addr)
			e.boolean(w.Alive)
			e.f64(w.Load)
			e.varint(int64(w.Stored))
			e.varint(int64(w.Cameras))
			e.boolean(w.Scraped)
			e.statsResult(&w.Stats)
		}
	case *Replicate:
		e.str(string(m.Leader))
		e.str(m.LeaderAddr)
		e.u64(m.Epoch)
		e.u64(m.Commit)
		e.u64(m.FromIndex)
		e.u64(m.SnapIndex)
		e.varint(int64(len(m.Records)))
		for i := range m.Records {
			e.controlRecord(&m.Records[i])
		}
	case *ReplicateAck:
		e.u64(m.Applied)
		e.u64(m.NeedFrom)
	case *LeaderQuery:
		// empty payload
	case *LeaderInfo:
		e.str(string(m.Node))
		e.str(m.Addr)
		e.boolean(m.IsLeader)
		e.str(string(m.Leader))
		e.str(m.LeaderAddr)
		e.u64(m.Epoch)
		e.u64(m.Applied)
	case *Subscribe:
		e.varint(int64(m.Kind))
		e.rect(m.Rect)
		e.varint(int64(m.Threshold))
		e.str(m.Tenant)
	case *SubscribeAck:
		e.u64(m.SubID)
		e.u64(m.QueryID)
		e.varint(int64(m.Shared))
	case *PollUpdates:
		e.u64(m.SubID)
		e.varint(int64(m.Max))
	case *PollResult:
		e.u64(m.SubID)
		e.varint(int64(len(m.Updates)))
		for i := range m.Updates {
			e.continuousUpdate(&m.Updates[i])
		}
		e.varint(m.Dropped)
		e.boolean(m.Evicted)
	case *Unsubscribe:
		e.u64(m.SubID)
	case *UnsubscribeAck:
		e.varint(int64(m.Remaining))
	case *Error:
		e.varint(int64(m.Code))
		e.str(m.Message)
	default:
		return dst, fmt.Errorf("wire: cannot marshal %T as %v", payload, kind)
	}
	return e.buf, nil
}

// --- primitive encoders ---

type encoder struct {
	buf []byte
}

func (e *encoder) u32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

func (e *encoder) u64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

func (e *encoder) varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) f32(v float32) { e.u32(math.Float32bits(v)) }

func (e *encoder) boolean(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *encoder) str(s string) {
	e.varint(int64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) point(p geo.Point) {
	e.f64(p.X)
	e.f64(p.Y)
}

func (e *encoder) rect(r geo.Rect) {
	e.point(r.Min)
	e.point(r.Max)
}

func (e *encoder) timestamp(t time.Time) {
	if t.IsZero() {
		e.boolean(false)
		return
	}
	e.boolean(true)
	e.varint(t.Unix())
	e.varint(int64(t.Nanosecond()))
}

func (e *encoder) window(w TimeWindow) {
	e.timestamp(w.From)
	e.timestamp(w.To)
}

func (e *encoder) feature(f []float32) {
	e.varint(int64(len(f)))
	for _, v := range f {
		e.f32(v)
	}
}

func (e *encoder) observation(o *Observation) {
	e.u64(o.ObsID)
	e.u32(o.Camera)
	e.timestamp(o.Time)
	e.point(o.Pos)
	e.feature(o.Feature)
	e.u64(o.TrueID)
}

func (e *encoder) record(r *ResultRecord) {
	e.u64(r.ObsID)
	e.u64(r.TargetID)
	e.u32(r.Camera)
	e.point(r.Pos)
	e.timestamp(r.Time)
}

// continuousUpdate is the shared body encoding of one ContinuousUpdate,
// byte-identical whether the update travels standalone (KindContinuousUpdate)
// or inside a PollResult batch.
func (e *encoder) continuousUpdate(m *ContinuousUpdate) {
	e.u64(m.QueryID)
	e.timestamp(m.Time)
	e.varint(int64(len(m.Positive)))
	for i := range m.Positive {
		e.record(&m.Positive[i])
	}
	e.varint(int64(len(m.Negative)))
	for i := range m.Negative {
		e.record(&m.Negative[i])
	}
	e.varint(int64(m.Count))
}

func (e *encoder) cameraInfos(cs []CameraInfo) {
	e.varint(int64(len(cs)))
	for i := range cs {
		c := &cs[i]
		e.u32(c.ID)
		e.point(c.Pos)
		e.f64(c.Orient)
		e.f64(c.HalfFOV)
		e.f64(c.Range)
	}
}

func (e *encoder) kvs(m map[string]int64) {
	e.varint(int64(len(m)))
	// Deterministic order is not required on the wire; readers rebuild maps.
	for k, v := range m {
		e.str(k)
		e.varint(v)
	}
}

func (e *encoder) histStats(m map[string]HistStats) {
	e.varint(int64(len(m)))
	for k, v := range m {
		e.str(k)
		e.varint(v.Count)
		e.varint(v.Sum)
		e.varint(v.Min)
		e.varint(v.Max)
		e.varint(v.P50)
		e.varint(v.P95)
		e.varint(v.P99)
	}
}

func (e *encoder) summary(s *WorkerSummary) {
	if s == nil {
		e.boolean(false)
		return
	}
	e.boolean(true)
	e.u64(s.Epoch)
	e.varint(int64(s.Records))
	e.f64(s.CellSize)
	e.timestamp(s.BucketFrom)
	e.varint(int64(s.BucketWidth))
	e.varint(int64(len(s.Cells)))
	for i := range s.Cells {
		c := &s.Cells[i]
		e.varint(int64(c.CX))
		e.varint(int64(c.CY))
		e.varint(c.Count)
		e.rect(c.Bounds)
		e.varint(int64(len(c.Buckets)))
		for _, b := range c.Buckets {
			e.varint(b)
		}
	}
}

func (e *encoder) statsResult(s *StatsResult) {
	e.str(string(s.Node))
	e.kvs(s.Counters)
	e.kvs(s.Gauges)
	e.histStats(s.Histograms)
}

func (e *encoder) controlRecord(r *ControlRecord) {
	e.u64(r.Index)
	e.u64(r.Epoch)
	e.varint(int64(r.Op))
	e.cameraInfos(r.Cameras)
	e.varint(int64(len(r.Assign)))
	for i := range r.Assign {
		a := &r.Assign[i]
		e.u32(a.Camera)
		e.str(string(a.Node))
		e.varint(int64(len(a.Replicas)))
		for _, n := range a.Replicas {
			e.str(string(n))
		}
	}
	e.u64(r.Track.TrackID)
	e.str(string(r.Track.Owner))
	e.u32(r.Track.LastCamera)
	e.feature(r.Track.Feature)
	e.timestamp(r.Track.LastSeen)
	e.varint(int64(r.Track.Handoffs))
	e.str(string(r.Member.Node))
	e.str(r.Member.Addr)
	e.varint(int64(r.Member.Capacity))
}
