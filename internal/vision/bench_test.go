package vision

import (
	"math/rand"
	"testing"
)

func BenchmarkCosine64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := NewRandomFeature(rng, 64)
	y := NewRandomFeature(rng, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Cosine(x, y)
	}
}

func BenchmarkGalleryMatch1000(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := NewGallery()
	var probeBase Feature
	for id := uint64(1); id <= 1000; id++ {
		f := NewRandomFeature(rng, 64)
		if id == 500 {
			probeBase = f
		}
		g.Enroll(id, f)
	}
	probe := probeBase.Perturb(rng, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Match(probe, 5); err != nil {
			b.Fatal(err)
		}
	}
}
