// Package vision simulates the video-analytics layer of a camera network:
// object detection with configurable noise and error rates, appearance
// feature extraction, and re-identification matching against a gallery.
//
// The framework consumes detection events, not pixels, so a synthetic
// detector that reproduces the *statistics* of real analytics — positional
// error, embedding noise, false positives and false negatives — exercises
// exactly the same indexing and tracking code paths a real detector would
// (DESIGN.md §4).
package vision

import (
	"fmt"
	"math"
	"math/rand"
)

// Feature is an appearance embedding (e.g. a re-id CNN descriptor). Features
// are compared with cosine similarity; generators produce unit vectors.
type Feature []float32

// DefaultFeatureDim is the embedding dimensionality used when a config leaves
// it zero. Real re-id embeddings are 128–2048 dims; 64 keeps tests fast while
// preserving the concentration behaviour that makes matching work.
const DefaultFeatureDim = 64

// NewRandomFeature returns a random unit vector of the given dimension. Each
// distinct object identity gets one; separability of random unit vectors in
// high dimension is what stands in for a trained embedding space.
func NewRandomFeature(rng *rand.Rand, dim int) Feature {
	if dim <= 0 {
		dim = DefaultFeatureDim
	}
	f := make(Feature, dim)
	for i := range f {
		f[i] = float32(rng.NormFloat64())
	}
	f.normalize()
	return f
}

// Perturb returns a copy of f with Gaussian noise of the given standard
// deviation added per component, re-normalized. It models per-observation
// appearance variation (pose, lighting, occlusion).
func (f Feature) Perturb(rng *rand.Rand, sigma float64) Feature {
	out := make(Feature, len(f))
	for i, v := range f {
		out[i] = v + float32(rng.NormFloat64()*sigma)
	}
	out.normalize()
	return out
}

// Clone returns a copy of f.
func (f Feature) Clone() Feature {
	out := make(Feature, len(f))
	copy(out, f)
	return out
}

func (f Feature) normalize() {
	var sum float64
	for _, v := range f {
		sum += float64(v) * float64(v)
	}
	n := math.Sqrt(sum)
	if n == 0 {
		return
	}
	for i := range f {
		f[i] = float32(float64(f[i]) / n)
	}
}

// Cosine returns the cosine similarity between two features in [-1, 1].
// Mismatched dimensions or empty features return -1 (worst match) — a
// deliberate fail-closed choice for the matcher.
func Cosine(a, b Feature) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return -1
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return -1
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// String implements fmt.Stringer with a compact fingerprint.
func (f Feature) String() string {
	if len(f) == 0 {
		return "feature[]"
	}
	return fmt.Sprintf("feature[dim=%d %0.3f %0.3f ...]", len(f), f[0], f[1])
}
