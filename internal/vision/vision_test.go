package vision

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"stcam/internal/camera"
	"stcam/internal/geo"
)

var t0 = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

func TestFeatureUnitNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewRandomFeature(rng, 32)
	if len(f) != 32 {
		t.Fatalf("dim = %d", len(f))
	}
	var sum float64
	for _, v := range f {
		sum += float64(v) * float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("norm² = %v, want 1", sum)
	}
	if got := NewRandomFeature(rng, 0); len(got) != DefaultFeatureDim {
		t.Errorf("default dim = %d", len(got))
	}
}

func TestCosine(t *testing.T) {
	a := Feature{1, 0, 0}
	b := Feature{0, 1, 0}
	if got := Cosine(a, a); math.Abs(got-1) > 1e-6 {
		t.Errorf("self cosine = %v", got)
	}
	if got := Cosine(a, b); math.Abs(got) > 1e-6 {
		t.Errorf("orthogonal cosine = %v", got)
	}
	neg := Feature{-1, 0, 0}
	if got := Cosine(a, neg); math.Abs(got+1) > 1e-6 {
		t.Errorf("opposite cosine = %v", got)
	}
	// Fail-closed cases.
	if Cosine(nil, a) != -1 || Cosine(a, Feature{1, 0}) != -1 {
		t.Error("dimension mismatch should score -1")
	}
	if Cosine(Feature{0, 0, 0}, a) != -1 {
		t.Error("zero vector should score -1")
	}
}

func TestPerturbPreservesIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := NewRandomFeature(rng, 64)
	// Expected cosine ≈ 1/√(1+σ²·dim) ≈ 0.93 for σ=0.05, dim=64.
	light := f.Perturb(rng, 0.05)
	if got := Cosine(f, light); got < 0.85 {
		t.Errorf("light perturbation cosine = %v, want > 0.85", got)
	}
	heavy := f.Perturb(rng, 10)
	if got := Cosine(f, heavy); got > 0.5 {
		t.Errorf("heavy perturbation cosine = %v, want <= 0.5", got)
	}
	// Distinct identities are near-orthogonal in high dim.
	other := NewRandomFeature(rng, 64)
	if got := Cosine(f, other); math.Abs(got) > 0.5 {
		t.Errorf("distinct identities cosine = %v", got)
	}
}

func TestDetectorObserve(t *testing.T) {
	cam := camera.New(1, geo.Pt(0, 0), 0, math.Pi/4, 100)
	rng := rand.New(rand.NewSource(3))
	feat := NewRandomFeature(rng, 16)

	// Noiseless detector: exact position, same feature, no drops.
	d := NewDetector(DetectorConfig{Seed: 1})
	det, ok := d.Observe(cam, 42, geo.Pt(50, 0), feat, t0)
	if !ok {
		t.Fatal("visible object not detected")
	}
	if det.Pos != geo.Pt(50, 0) {
		t.Errorf("noiseless position = %v", det.Pos)
	}
	if det.TrueID != 42 || det.Camera != 1 || !det.Time.Equal(t0) {
		t.Errorf("detection metadata wrong: %+v", det)
	}
	if Cosine(det.Feature, feat) < 0.999 {
		t.Error("noiseless feature altered")
	}
	if det.ObsID == 0 {
		t.Error("ObsID not assigned")
	}
	// Mutating the returned feature must not alias the input.
	det.Feature[0] = 99
	if feat[0] == 99 {
		t.Error("detection feature aliases ground-truth feature")
	}

	// Invisible object: no detection.
	if _, ok := d.Observe(cam, 42, geo.Pt(-50, 0), feat, t0); ok {
		t.Error("invisible object detected")
	}
}

func TestDetectorFalseNegatives(t *testing.T) {
	cam := camera.New(1, geo.Pt(0, 0), 0, math.Pi, 100)
	rng := rand.New(rand.NewSource(4))
	feat := NewRandomFeature(rng, 8)
	d := NewDetector(DetectorConfig{FalseNegRate: 0.3, Seed: 2})
	hits := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if _, ok := d.Observe(cam, 1, geo.Pt(10, 10), feat, t0); ok {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.65 || rate > 0.75 {
		t.Errorf("hit rate = %v, want ≈ 0.7", rate)
	}
}

func TestDetectorPositionNoise(t *testing.T) {
	cam := camera.New(1, geo.Pt(0, 0), 0, math.Pi, 1000)
	rng := rand.New(rand.NewSource(5))
	feat := NewRandomFeature(rng, 8)
	d := NewDetector(DetectorConfig{PosNoise: 2, Seed: 3})
	truePos := geo.Pt(100, 100)
	var sumErr float64
	const trials = 1000
	for i := 0; i < trials; i++ {
		det, ok := d.Observe(cam, 1, truePos, feat, t0)
		if !ok {
			t.Fatal("drop with zero FN rate")
		}
		sumErr += det.Pos.Dist(truePos)
	}
	mean := sumErr / trials
	// Mean of |N(0,2)²| distance ≈ 2·√(π/2) ≈ 2.5.
	if mean < 1.5 || mean > 3.5 {
		t.Errorf("mean position error = %v, want ≈ 2.5", mean)
	}
}

func TestDetectorFalsePositives(t *testing.T) {
	cam := camera.New(1, geo.Pt(0, 0), 0, math.Pi/3, 50)
	d := NewDetector(DetectorConfig{FalsePosRate: 0.5, Seed: 6})
	total := 0
	const frames = 2000
	for i := 0; i < frames; i++ {
		fps := d.FalsePositives(cam, t0)
		for _, fp := range fps {
			if fp.TrueID != 0 {
				t.Fatal("false positive carries a true ID")
			}
			if !cam.Sees(fp.Pos) {
				t.Fatalf("false positive at %v outside FOV", fp.Pos)
			}
			if len(fp.Feature) != DefaultFeatureDim {
				t.Fatal("false positive missing feature")
			}
		}
		total += len(fps)
	}
	rate := float64(total) / frames
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("false-positive rate = %v, want ≈ 0.5", rate)
	}
	// Zero rate produces nothing.
	d0 := NewDetector(DetectorConfig{Seed: 7})
	if fps := d0.FalsePositives(cam, t0); fps != nil {
		t.Errorf("zero-rate detector produced %v", fps)
	}
}

func TestObsIDsUnique(t *testing.T) {
	cam := camera.New(1, geo.Pt(0, 0), 0, math.Pi, 100)
	rng := rand.New(rand.NewSource(8))
	feat := NewRandomFeature(rng, 8)
	d := NewDetector(DetectorConfig{FalsePosRate: 0.2, Seed: 9})
	seen := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		if det, ok := d.Observe(cam, 1, geo.Pt(5, 5), feat, t0); ok {
			if seen[det.ObsID] {
				t.Fatalf("duplicate ObsID %d", det.ObsID)
			}
			seen[det.ObsID] = true
		}
		for _, fp := range d.FalsePositives(cam, t0) {
			if seen[fp.ObsID] {
				t.Fatalf("duplicate ObsID %d (fp)", fp.ObsID)
			}
			seen[fp.ObsID] = true
		}
	}
}

func TestGalleryMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := NewGallery()
	if _, err := g.Match(NewRandomFeature(rng, 16), 1); err != ErrEmptyGallery {
		t.Fatalf("match on empty gallery: %v", err)
	}
	ids := make(map[uint64]Feature)
	for id := uint64(1); id <= 20; id++ {
		f := NewRandomFeature(rng, 64)
		ids[id] = f
		g.Enroll(id, f)
	}
	if g.Len() != 20 {
		t.Fatalf("Len = %d", g.Len())
	}
	// Probe with a noisy view of identity 7: rank-1 must be 7.
	probe := ids[7].Perturb(rng, 0.1)
	matches, err := g.Match(probe, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 5 {
		t.Fatalf("got %d matches", len(matches))
	}
	if matches[0].ID != 7 {
		t.Errorf("rank-1 = %d, want 7 (matches %v)", matches[0].ID, matches)
	}
	for i := 1; i < len(matches); i++ {
		if matches[i].Score > matches[i-1].Score {
			t.Fatal("matches not sorted descending")
		}
	}
	// k larger than the gallery.
	all, _ := g.Match(probe, 100)
	if len(all) != 20 {
		t.Errorf("k=100 returned %d", len(all))
	}
	// k=0 returns nothing.
	if none, _ := g.Match(probe, 0); len(none) != 0 {
		t.Errorf("k=0 returned %v", none)
	}
}

func TestGalleryEnrollAveraging(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewGallery()
	base := NewRandomFeature(rng, 64)
	// A single noisy view at σ=0.3, dim=64 has expected cosine ≈ 0.38 to the
	// base; averaging 10 views shrinks the noise by √10, so the prototype
	// must score clearly higher than a lone view.
	single := Cosine(base, base.Perturb(rng, 0.3))
	for i := 0; i < 10; i++ {
		g.Enroll(1, base.Perturb(rng, 0.3))
	}
	m, err := g.Match(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m[0].Score < 0.6 {
		t.Errorf("averaged prototype similarity = %v, want > 0.6", m[0].Score)
	}
	if m[0].Score <= single {
		t.Errorf("averaging did not help: proto=%v single=%v", m[0].Score, single)
	}
}

func TestGalleryRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := NewGallery()
	g.Enroll(1, NewRandomFeature(rng, 16))
	if !g.Remove(1) {
		t.Fatal("remove failed")
	}
	if g.Remove(1) {
		t.Fatal("double remove succeeded")
	}
	if g.Len() != 0 {
		t.Fatal("gallery not empty")
	}
}

func TestAssociator(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := NewAssociator(0.7)
	f1 := NewRandomFeature(rng, 64)
	id1, matched := a.Associate(f1)
	if matched {
		t.Fatal("first probe matched an empty gallery")
	}
	// A noisy re-sighting of the same object associates to the same ID.
	id1b, matched := a.Associate(f1.Perturb(rng, 0.05))
	if !matched || id1b != id1 {
		t.Errorf("re-sighting: id=%d matched=%v, want id=%d matched=true", id1b, matched, id1)
	}
	// A distinct object founds a new identity.
	f2 := NewRandomFeature(rng, 64)
	id2, matched := a.Associate(f2)
	if matched || id2 == id1 {
		t.Errorf("distinct object: id=%d matched=%v", id2, matched)
	}
}

// TestReidAccuracyDegradesWithNoise encodes the shape expectation behind
// experiment R4: rank-1 accuracy falls as feature noise grows.
func TestReidAccuracyDegradesWithNoise(t *testing.T) {
	rank1 := func(noise float64) float64 {
		rng := rand.New(rand.NewSource(99))
		g := NewGallery()
		feats := make(map[uint64]Feature)
		for id := uint64(1); id <= 50; id++ {
			f := NewRandomFeature(rng, 64)
			feats[id] = f
			g.Enroll(id, f)
		}
		hits := 0
		const probes = 200
		for i := 0; i < probes; i++ {
			id := uint64(1 + rng.Intn(50))
			m, err := g.Match(feats[id].Perturb(rng, noise), 1)
			if err != nil {
				t.Fatal(err)
			}
			if m[0].ID == id {
				hits++
			}
		}
		return float64(hits) / probes
	}
	clean := rank1(0.02)
	noisy := rank1(1.0)
	if clean < 0.95 {
		t.Errorf("clean rank-1 = %v, want >= 0.95", clean)
	}
	if noisy >= clean {
		t.Errorf("rank-1 did not degrade with noise: clean=%v noisy=%v", clean, noisy)
	}
}
