package vision

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"stcam/internal/camera"
	"stcam/internal/geo"
)

// Detection is one analytics event: camera X saw something at world position
// P at time T, with appearance F. TrueID carries the simulator's ground-truth
// identity for evaluation; it is zero for false positives and would be absent
// in production.
type Detection struct {
	ObsID   uint64 // unique observation id (assigned by the detector)
	Camera  camera.ID
	Time    time.Time
	Pos     geo.Point
	Feature Feature
	TrueID  uint64
}

// DetectorConfig sets the error model of the simulated analytics pipeline.
type DetectorConfig struct {
	PosNoise     float64 // stddev of world-position error, meters
	FeatureNoise float64 // stddev of per-component embedding noise
	FalseNegRate float64 // probability a visible object produces no detection
	FalsePosRate float64 // expected spurious detections per camera per frame
	FeatureDim   int     // embedding dimension (0 → DefaultFeatureDim)
	Seed         int64
}

// Detector turns ground-truth world state into detection events. It is safe
// for concurrent use (the per-camera simulation loops share one detector).
type Detector struct {
	cfg DetectorConfig

	mu     sync.Mutex
	rng    *rand.Rand
	nextID uint64
}

// NewDetector returns a detector with the given error model.
func NewDetector(cfg DetectorConfig) *Detector {
	if cfg.FeatureDim <= 0 {
		cfg.FeatureDim = DefaultFeatureDim
	}
	return &Detector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Config returns the detector's error model.
func (d *Detector) Config() DetectorConfig { return d.cfg }

// Observe produces the detection (if any) of one ground-truth object by one
// camera at one instant. The second return is false when the object is not
// visible or a false negative was drawn.
func (d *Detector) Observe(cam *camera.Camera, objID uint64, truePos geo.Point, trueFeat Feature, t time.Time) (Detection, bool) {
	if !cam.Sees(truePos) {
		return Detection{}, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cfg.FalseNegRate > 0 && d.rng.Float64() < d.cfg.FalseNegRate {
		return Detection{}, false
	}
	pos := truePos
	if d.cfg.PosNoise > 0 {
		pos = pos.Add(geo.Pt(
			d.rng.NormFloat64()*d.cfg.PosNoise,
			d.rng.NormFloat64()*d.cfg.PosNoise,
		))
	}
	feat := trueFeat
	if d.cfg.FeatureNoise > 0 && len(trueFeat) > 0 {
		feat = trueFeat.Perturb(d.rng, d.cfg.FeatureNoise)
	} else if len(trueFeat) > 0 {
		feat = trueFeat.Clone()
	}
	d.nextID++
	return Detection{
		ObsID:   d.nextID,
		Camera:  cam.ID,
		Time:    t,
		Pos:     pos,
		Feature: feat,
		TrueID:  objID,
	}, true
}

// FalsePositives draws the spurious detections for one camera frame: a
// Poisson(FalsePosRate) count of detections at random positions inside the
// FOV bounding box (rejection-sampled into the FOV) with random features.
func (d *Detector) FalsePositives(cam *camera.Camera, t time.Time) []Detection {
	if d.cfg.FalsePosRate <= 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	n := poisson(d.rng, d.cfg.FalsePosRate)
	if n == 0 {
		return nil
	}
	b := cam.Bounds()
	out := make([]Detection, 0, n)
	for i := 0; i < n; i++ {
		var p geo.Point
		found := false
		for try := 0; try < 32; try++ {
			p = geo.Pt(
				b.Min.X+d.rng.Float64()*b.Width(),
				b.Min.Y+d.rng.Float64()*b.Height(),
			)
			if cam.Sees(p) {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		d.nextID++
		out = append(out, Detection{
			ObsID:   d.nextID,
			Camera:  cam.ID,
			Time:    t,
			Pos:     p,
			Feature: NewRandomFeature(d.rng, d.cfg.FeatureDim),
			TrueID:  0,
		})
	}
	return out
}

// poisson draws from Poisson(lambda) by inversion (Knuth); adequate for the
// small rates used here.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // defensive bound for absurd lambdas
		}
	}
}
