package vision

import (
	"errors"
	"sort"
	"sync"
)

// Match is one re-identification candidate: a gallery identity and its
// similarity to the probe.
type Match struct {
	ID    uint64
	Score float64 // cosine similarity in [-1, 1]
}

// Gallery is a set of known identities with reference features, supporting
// rank-k re-identification queries. Multiple reference features per identity
// are averaged into a prototype (the standard "centroid gallery" scheme).
// Safe for concurrent use.
type Gallery struct {
	mu     sync.RWMutex
	protos map[uint64]Feature
	counts map[uint64]int
}

// ErrEmptyGallery is returned by Match when no identities are enrolled.
var ErrEmptyGallery = errors.New("vision: empty gallery")

// NewGallery returns an empty gallery.
func NewGallery() *Gallery {
	return &Gallery{
		protos: make(map[uint64]Feature),
		counts: make(map[uint64]int),
	}
}

// Enroll adds a reference feature for an identity, updating its prototype as
// the running mean of enrolled features (re-normalized).
func (g *Gallery) Enroll(id uint64, f Feature) {
	g.mu.Lock()
	defer g.mu.Unlock()
	proto, ok := g.protos[id]
	if !ok {
		g.protos[id] = f.Clone()
		g.counts[id] = 1
		return
	}
	n := float32(g.counts[id])
	for i := range proto {
		if i < len(f) {
			proto[i] = (proto[i]*n + f[i]) / (n + 1)
		}
	}
	proto.normalize()
	g.counts[id]++
}

// Remove drops an identity, returning whether it existed.
func (g *Gallery) Remove(id uint64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.protos[id]; !ok {
		return false
	}
	delete(g.protos, id)
	delete(g.counts, id)
	return true
}

// Len returns the number of enrolled identities.
func (g *Gallery) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.protos)
}

// Match returns the top-k identities by similarity to the probe, descending,
// ties broken by ascending ID.
func (g *Gallery) Match(probe Feature, k int) ([]Match, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(g.protos) == 0 {
		return nil, ErrEmptyGallery
	}
	if k <= 0 {
		return nil, nil
	}
	matches := make([]Match, 0, len(g.protos))
	for id, proto := range g.protos {
		matches = append(matches, Match{ID: id, Score: Cosine(probe, proto)})
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Score != matches[j].Score {
			return matches[i].Score > matches[j].Score
		}
		return matches[i].ID < matches[j].ID
	})
	if k < len(matches) {
		matches = matches[:k]
	}
	return matches, nil
}

// Associator performs online identity association for tracking: a probe
// either matches an enrolled identity above the threshold or founds a new
// identity. This is how cross-camera tracking decides whether a detection at
// a neighboring camera is "the same target".
type Associator struct {
	gallery   *Gallery
	threshold float64

	mu     sync.Mutex
	nextID uint64
}

// NewAssociator returns an associator over its own gallery with the given
// acceptance threshold (cosine similarity).
func NewAssociator(threshold float64) *Associator {
	return &Associator{gallery: NewGallery(), threshold: threshold, nextID: 1}
}

// Gallery exposes the underlying gallery (for enrollment of known targets).
func (a *Associator) Gallery() *Gallery { return a.gallery }

// Associate matches the probe against known identities; on success it
// re-enrolls the probe (online adaptation) and returns (id, true). Otherwise
// it mints a new identity and returns (newID, false).
func (a *Associator) Associate(probe Feature) (uint64, bool) {
	matches, err := a.gallery.Match(probe, 1)
	if err == nil && len(matches) == 1 && matches[0].Score >= a.threshold {
		a.gallery.Enroll(matches[0].ID, probe)
		return matches[0].ID, true
	}
	a.mu.Lock()
	id := a.nextID
	a.nextID++
	a.mu.Unlock()
	a.gallery.Enroll(id, probe)
	return id, false
}
