// Package stcam is a distributed framework for spatio-temporal analysis on
// large-scale camera networks.
//
// A deployment consists of one Coordinator and a fleet of Workers. Cameras
// are registered at the coordinator, which partitions them across workers
// (spatially by default, so neighboring cameras share a worker). Each worker
// ingests its cameras' detection streams into a local spatio-temporal index
// and answers the coordinator's sub-queries; the coordinator routes queries
// to the workers whose cameras could hold matching observations and merges
// the partial results.
//
// The framework supports:
//
//   - Snapshot queries: spatio-temporal Range, KNN, Count, and Trajectory.
//   - Continuous queries: standing range/count predicates whose answers are
//     maintained incrementally as positive/negative deltas.
//   - Target-centric tracking: a tracker follows a target across cameras,
//     migrating between workers via vision-graph-scoped handoff (only the
//     topologically adjacent cameras are primed, not the whole network).
//   - Re-identification: appearance-feature search over recent observations.
//
// The quickest way in is NewLocalCluster, which assembles everything
// in-process:
//
//	cl, err := stcam.NewLocalCluster(4, nil, stcam.Options{})
//	if err != nil { ... }
//	defer cl.Stop()
//	cl.Coordinator.AddCameras(ctx, cameras, 50)
//	// stream wire.IngestBatch messages to the workers, then:
//	recs, err := cl.Coordinator.Range(ctx, rect, window, 0)
//
// Production deployments run cmd/stcamd for each node over TCP; see README.md.
package stcam

import (
	"context"

	"stcam/internal/camera"
	"stcam/internal/cluster"
	"stcam/internal/core"
	"stcam/internal/geo"
	"stcam/internal/obs"
	"stcam/internal/serve"
	"stcam/internal/sim"
	"stcam/internal/vision"
	"stcam/internal/wire"
)

// Geometry primitives.
type (
	// Point is a planar position in meters.
	Point = geo.Point
	// Rect is an axis-aligned rectangle with inclusive boundaries.
	Rect = geo.Rect
	// Trajectory is a time-ordered path of positions.
	Trajectory = geo.Trajectory
)

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// RectOf builds the rectangle with the given corners, normalizing order.
func RectOf(x0, y0, x1, y1 float64) Rect { return geo.RectOf(x0, y0, x1, y1) }

// Framework types.
type (
	// Options tunes the framework; the zero value selects sane defaults.
	Options = core.Options
	// Coordinator is the head node and client gateway.
	Coordinator = core.Coordinator
	// Worker is one analysis node.
	Worker = core.Worker
	// Cluster bundles a coordinator and workers over one transport.
	Cluster = core.Cluster
	// HACluster bundles a replicated coordinator group, its workers, and
	// the per-node fault-injection views they run over.
	HACluster = core.HACluster
	// Ingester routes detection batches to the owning workers, coalescing
	// each frame into one sequenced RPC per worker and pipelining frames.
	Ingester = core.Ingester
	// IngesterOptions tunes an Ingester's pipeline depth and delivery mode.
	IngesterOptions = core.IngesterOptions
)

// Wire-protocol types used at the public API boundary.
type (
	// CameraInfo describes a camera registration.
	CameraInfo = wire.CameraInfo
	// TimeWindow is a closed query time interval.
	TimeWindow = wire.TimeWindow
	// Observation is one detection event on the wire.
	Observation = wire.Observation
	// ResultRecord is one observation in a query result.
	ResultRecord = wire.ResultRecord
	// KNNRecord is a nearest-neighbor result with its squared distance.
	KNNRecord = wire.KNNRecord
	// ContinuousUpdate is an incremental answer delta from a standing query.
	ContinuousUpdate = wire.ContinuousUpdate
	// HeatCell is one cell of an observation-density heatmap.
	HeatCell = wire.HeatCell
	// TrackUpdate is a position report from an active track.
	TrackUpdate = wire.TrackUpdate
	// NodeID names a cluster node.
	NodeID = wire.NodeID
)

// Continuous-query kinds.
const (
	// ContinuousRange maintains the set of targets inside a rectangle.
	ContinuousRange = wire.ContinuousRange
	// ContinuousCount additionally reports cardinality threshold crossings.
	ContinuousCount = wire.ContinuousCount
)

// Transports and partitioners.
type (
	// Transport moves protocol messages between nodes.
	Transport = cluster.Transport
	// Partitioner assigns cameras to workers.
	Partitioner = cluster.Partitioner
	// SpatialPartitioner keeps neighboring cameras on the same worker.
	SpatialPartitioner = cluster.SpatialPartitioner
	// HashPartitioner spreads cameras with rendezvous hashing.
	HashPartitioner = cluster.HashPartitioner
	// RoundRobinPartitioner deals cameras to workers in ID order.
	RoundRobinPartitioner = cluster.RoundRobinPartitioner
)

// Resilience and fault injection.
type (
	// Policy tunes outbound-RPC deadlines, retry/backoff, and circuit
	// breaking; the zero value selects the documented defaults.
	Policy = cluster.Policy
	// Resilient decorates any Transport with deadlines, retries, and
	// per-peer circuit breakers. Nodes wrap their transport in one
	// automatically; wrap explicitly to share a policy across clients.
	Resilient = cluster.Resilient
	// Faulty decorates any Transport with deterministic, seeded fault
	// injection (drops, latency, hangs, partitions, duplicates).
	Faulty = cluster.Faulty
	// FaultProgram describes the faults injected on one link.
	FaultProgram = cluster.FaultProgram
	// FaultyNet hands each node its own seeded Faulty view over one base
	// transport, making symmetric partitions and scripted link weather
	// (HealAfter, FlapEvery) expressible across a whole cluster.
	FaultyNet = cluster.FaultyNet
	// QueryMeta reports answer completeness for a scatter-gather query.
	QueryMeta = core.QueryMeta
)

// ErrCircuitOpen is returned for calls rejected by an open circuit breaker;
// it wraps the transport's unreachable error.
var ErrCircuitOpen = cluster.ErrCircuitOpen

// Observability: each node can expose a small HTTP surface with Prometheus
// text-format metrics (/metrics), liveness and readiness probes (/healthz,
// /readyz), and the Go runtime profiler (/debug/pprof/). cmd/stcamd mounts
// it behind the -http flag.
type (
	// ObsOptions configures a node's observability endpoint: the node label,
	// the metrics snapshot source, and the readiness probe.
	ObsOptions = obs.Options
	// ObsServer is a running observability endpoint.
	ObsServer = obs.Server
)

// ServeObs binds addr and serves the observability endpoints until Close.
func ServeObs(addr string, o ObsOptions) (*ObsServer, error) { return obs.Serve(addr, o) }

// NewResilient wraps a transport with retry, deadline, and circuit-breaker
// behaviour per the policy.
func NewResilient(inner Transport, p Policy) *Resilient { return cluster.NewResilient(inner, p) }

// NewFaulty wraps a transport with seeded fault injection.
func NewFaulty(inner Transport, seed int64) *Faulty { return cluster.NewFaulty(inner, seed) }

// NewFaultyNet wraps a base transport in a cluster-wide fault coordinator:
// build each node over its own View and partitions become symmetric.
func NewFaultyNet(base Transport, seed int64) *FaultyNet { return cluster.NewFaultyNet(base, seed) }

// NewInProc returns an in-process transport (tests, single-binary clusters).
func NewInProc(opts ...cluster.InProcOption) *cluster.InProc { return cluster.NewInProc(opts...) }

// NewTCP returns the production TCP transport.
func NewTCP() *cluster.TCP { return cluster.NewTCP() }

// NewCoordinator constructs a coordinator node. A nil partitioner selects
// spatial partitioning.
func NewCoordinator(addr string, t Transport, p Partitioner, opts Options) *Coordinator {
	return core.NewCoordinator(addr, t, p, opts)
}

// NewWorker constructs a worker node that will register with the coordinator
// at coordAddr.
func NewWorker(id NodeID, addr, coordAddr string, t Transport, opts Options) *Worker {
	return core.NewWorker(id, addr, coordAddr, t, opts)
}

// NewLocalCluster assembles a coordinator plus n workers in-process.
func NewLocalCluster(n int, p Partitioner, opts Options) (*Cluster, error) {
	return core.NewLocalCluster(n, p, opts)
}

// NewLocalClusterOver is NewLocalCluster over a caller-supplied transport,
// typically a Faulty decorator for failure testing.
func NewLocalClusterOver(t Transport, n int, p Partitioner, opts Options) (*Cluster, error) {
	return core.NewLocalClusterOver(t, n, p, opts)
}

// NewHACluster assembles m replicated coordinators (the first boots leader)
// plus n workers over a seeded FaultyNet, in-process — the harness for
// failover and partition chaos testing.
func NewHACluster(m, n int, p Partitioner, seed int64, opts Options) (*HACluster, error) {
	return core.NewHACluster(m, n, p, seed, opts)
}

// Serving plane: the coordinator front end for heavy read traffic — shared
// continuous-query fan-out, an epoch-keyed result cache, and admission
// control with priority shedding and per-tenant quotas. cmd/stcamd mounts it
// behind the -serve flag.
type (
	// Frontend is a running serving plane, installed as the coordinator's
	// gateway.
	Frontend = serve.Frontend
	// ServeOptions configures the serving plane (cache budget and TTL,
	// quota rate, shed watermark, subscriber buffering).
	ServeOptions = serve.Options
	// Priority is an RPC priority class for admission control.
	Priority = cluster.Priority
)

// Priority classes, in shed order: background sheds first, interactive at
// twice the watermark, control never.
const (
	PriorityControl     = cluster.PriorityControl
	PriorityInteractive = cluster.PriorityInteractive
	PriorityBackground  = cluster.PriorityBackground
)

// NewFrontend attaches a serving plane to the coordinator and returns it.
func NewFrontend(c *Coordinator, o ServeOptions) *Frontend { return serve.New(c, o) }

// WithPriority tags outbound calls on this context with a priority class the
// serving plane sheds by.
func WithPriority(ctx context.Context, p Priority) context.Context {
	return cluster.WithPriority(ctx, p)
}

// WithTenant tags outbound calls on this context with the tenant charged for
// the serving plane's per-tenant query quota.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return cluster.WithTenant(ctx, tenant)
}

// NewIngester returns a detection router bound to a coordinator, with
// default pipelining. Call Close when done to drain the send lanes.
func NewIngester(c *Coordinator, t Transport) *Ingester { return core.NewIngester(c, t) }

// NewIngesterWith is NewIngester with explicit pipeline options (depth,
// serial mode, sender identity).
func NewIngesterWith(c *Coordinator, t Transport, o IngesterOptions) *Ingester {
	return core.NewIngesterWith(c, t, o)
}

// Camera modeling.
type (
	// Camera is a calibrated camera with a sector field of view.
	Camera = camera.Camera
	// CameraNetwork is the camera topology plus the vision graph.
	CameraNetwork = camera.Network
	// CameraID identifies a camera.
	CameraID = camera.ID
	// LayoutConfig parameterizes synthetic deployments.
	LayoutConfig = camera.LayoutConfig
)

// NewCameraNetwork returns an empty camera network.
func NewCameraNetwork() *CameraNetwork { return camera.NewNetwork() }

// NewCamera constructs a camera; see camera.New for parameter semantics.
func NewCamera(id CameraID, pos Point, orient, halfFOV, rng float64) *Camera {
	return camera.New(id, pos, orient, halfFOV, rng)
}

// GridLayout places rows×cols cameras on a lattice over the world.
func GridLayout(cfg LayoutConfig, rows, cols int) *CameraNetwork {
	return camera.GridLayout(cfg, rows, cols)
}

// CorridorLayout places n cameras along a corridor (chain topology).
func CorridorLayout(cfg LayoutConfig, n int) *CameraNetwork {
	return camera.CorridorLayout(cfg, n)
}

// Simulation and synthetic analytics (the evaluation substrate).
type (
	// World is a deterministic simulation of moving objects.
	World = sim.World
	// WorldConfig parameterizes a simulation.
	WorldConfig = sim.Config
	// Mobility is a pluggable movement model.
	Mobility = sim.Mobility
	// RandomWaypoint is the classic waypoint mobility model.
	RandomWaypoint = sim.RandomWaypoint
	// RoadGrid moves objects along a Manhattan road lattice.
	RoadGrid = sim.RoadGrid
	// Detector simulates a camera analytics pipeline.
	Detector = vision.Detector
	// DetectorConfig sets the detector's error model.
	DetectorConfig = vision.DetectorConfig
	// Detection is one simulated analytics event.
	Detection = vision.Detection
	// Feature is an appearance embedding.
	Feature = vision.Feature
	// Gallery answers re-identification queries over enrolled identities.
	Gallery = vision.Gallery
)

// NewWorld builds a simulation world.
func NewWorld(cfg WorldConfig) (*World, error) { return sim.NewWorld(cfg) }

// NewDetector builds a simulated detector.
func NewDetector(cfg DetectorConfig) *Detector { return vision.NewDetector(cfg) }

// NewGallery returns an empty re-identification gallery.
func NewGallery() *Gallery { return vision.NewGallery() }

// SimStart is the fixed simulation epoch used by deterministic runs.
var SimStart = sim.DefaultStart
