GO ?= go

.PHONY: all build vet fmt test race bench check fuzz soak-short soak soak-core soak-serve lint stcamlint

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails if any file deviates from gofmt output.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: format check, vet, build, and the full test suite
# under the race detector.
check: fmt vet build race

# stcamlint runs the project's own static analyzer suite (rpcunderlock,
# bufrelease, failclosed, clockinject, metricname — see internal/analyzers)
# over the whole tree. Zero diagnostics outside documented //lint:allow
# suppressions is the bar; any output fails the build.
stcamlint:
	$(GO) run ./cmd/stcamlint ./...

# lint is the full static gate: the stcamlint suite always, plus pinned
# staticcheck and govulncheck when the network allows fetching them (both run
# via `go run <module>@<pin>`, so nothing is added to go.mod). Offline or
# proxy-less environments still get the stcamlint sweep and a warning instead
# of a spurious failure; CI always has the network, so there the pinned tools
# are effectively mandatory.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3
lint: stcamlint
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./... || exit 1; \
	else echo "lint: staticcheck unavailable (offline?); skipped"; fi
	@if $(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./... || exit 1; \
	else echo "lint: govulncheck unavailable (offline?); skipped"; fi

# soak-short is the PR-time failover gate: the seeded leader-kill chaos soak
# (experiment R19) under the race detector, ~30s. A new leader must take over
# within two lease intervals with zero tracks lost and zero observations
# double-applied.
soak-short:
	$(GO) test -race -count=1 -run 'TestSoakFailover' ./internal/core/

# soak is the nightly long soak: the failover chaos soak at SOAK_FRAMES
# simulated frames plus the full ingest/query/tracking soak suite.
SOAK_FRAMES ?= 3000
soak:
	STCAM_SOAK_FRAMES=$(SOAK_FRAMES) $(GO) test -race -count=1 -timeout 30m -run 'TestSoak' -v ./internal/core/

# soak-core is the nightly matrix name for the core soak above.
soak-core: soak

# soak-serve is the serving-plane churn soak (PR-time CI job serve-soak):
# seeded subscribe/unsubscribe storms, lagging pollers, and mid-stream epoch
# bumps under the race detector, asserting no leaked installed queries and no
# stale cache hits across epochs. SOAK_ROUNDS scales it up for the nightly
# run (empty = the test's default).
SOAK_ROUNDS ?=
soak-serve:
	STCAM_SOAK_ROUNDS=$(SOAK_ROUNDS) $(GO) test -race -count=1 -timeout 10m -run 'TestSoakServeChurn' -v ./internal/serve/

# bench regenerates the experiment tables at CI scale.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# fuzz gives each fuzz target a short budget (regression corpora always run
# as part of `test`). Targets are discovered per package, so new Fuzz*
# functions join the rotation automatically; `go test -fuzz` only accepts
# one target at a time, hence the loop.
FUZZTIME ?= 10s
fuzz:
	@for pkg in $$($(GO) list ./...); do \
		for target in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz'); do \
			echo "== fuzz $$pkg $$target =="; \
			$(GO) test -run='^$$' -fuzz="^$$target$$" -fuzztime=$(FUZZTIME) $$pkg || exit 1; \
		done; \
	done
