package stcam

// This file maps every reconstructed experiment (DESIGN.md §3) to a testing.B
// target, so `go test -bench=.` regenerates the full evaluation. Each bench
// runs its experiment at a CI-friendly scale and reports the table through
// the benchmark log; `cmd/stcam-bench` runs the same experiments at full
// scale. Custom metrics surface the headline number of each experiment so
// -benchmem output is comparable across runs.

import (
	"strconv"
	"strings"
	"testing"

	"stcam/internal/bench"
)

// benchScale keeps `go test -bench=.` under a few minutes; stcam-bench
// defaults to 1.0.
const benchScale = bench.Scale(0.15)

func runExperiment(b *testing.B, run func(bench.Scale) *bench.Table) *bench.Table {
	b.Helper()
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		tbl = run(benchScale)
	}
	b.Log("\n" + tbl.String())
	return tbl
}

// cell parses a numeric table cell, tolerating suffixed strings.
func cell(tbl *bench.Table, row, col int) float64 {
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		return 0
	}
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkR1Ingest(b *testing.B) {
	tbl := runExperiment(b, bench.R1Ingest)
	// Headline: distributed events/second at the largest worker count.
	b.ReportMetric(cell(tbl, len(tbl.Rows)-1, 2), "events/s")
}

func BenchmarkR2QueryLatency(b *testing.B) {
	tbl := runExperiment(b, bench.R2QueryLatency)
	_ = tbl
}

func BenchmarkR3Handoff(b *testing.B) {
	tbl := runExperiment(b, bench.R3Handoff)
	// Headline: primes per handoff for scoped (row 0) vs broadcast (row 1).
	b.ReportMetric(cell(tbl, 0, 4), "scoped-primes/handoff")
	b.ReportMetric(cell(tbl, 1, 4), "broadcast-primes/handoff")
}

func BenchmarkR4Reid(b *testing.B) {
	tbl := runExperiment(b, bench.R4Reid)
	b.ReportMetric(cell(tbl, 0, 2), "rank1-clean")
}

func BenchmarkR5Balance(b *testing.B) {
	tbl := runExperiment(b, bench.R5Balance)
	b.ReportMetric(cell(tbl, 0, 5), "spatial-imbalance")
	b.ReportMetric(cell(tbl, 1, 5), "hash-imbalance")
}

func BenchmarkR6Index(b *testing.B) {
	runExperiment(b, bench.R6Index)
}

func BenchmarkR7Continuous(b *testing.B) {
	tbl := runExperiment(b, bench.R7Continuous)
	b.ReportMetric(cell(tbl, len(tbl.Rows)-1, 3), "ns/event-max-queries")
}

func BenchmarkR8Failover(b *testing.B) {
	runExperiment(b, bench.R8Failover)
}

func BenchmarkR9Retention(b *testing.B) {
	runExperiment(b, bench.R9Retention)
}

func BenchmarkR10Crossover(b *testing.B) {
	runExperiment(b, bench.R10Crossover)
}

func BenchmarkR11Histogram(b *testing.B) {
	tbl := runExperiment(b, bench.R11Histogram)
	b.ReportMetric(cell(tbl, len(tbl.Rows)-1, 1), "final-abs-error")
}

func BenchmarkR12Trajectory(b *testing.B) {
	tbl := runExperiment(b, bench.R12Trajectory)
	b.ReportMetric(cell(tbl, 0, 4), "clean-mean-err-m")
}

func BenchmarkR14FaultSweep(b *testing.B) {
	tbl := runExperiment(b, bench.R14FaultSweep)
	// Headline: availability at 30% drop, resilience off (row 2) vs on (row 3).
	b.ReportMetric(cell(tbl, 2, 3), "avail-30drop-off")
	b.ReportMetric(cell(tbl, 3, 3), "avail-30drop-on")
}

func BenchmarkR15IngestPipeline(b *testing.B) {
	tbl := runExperiment(b, bench.R15IngestPipeline)
	// Headline: single-worker pipelined ev/s at batch 256, depth 4 (row 5)
	// and its serial baseline, the pair the ≥2× claim is about.
	b.ReportMetric(cell(tbl, 5, 4), "pipelined-ev/s")
	b.ReportMetric(cell(tbl, 5, 3), "serial-ev/s")
}

func BenchmarkR16ScatterPruning(b *testing.B) {
	tbl := runExperiment(b, bench.R16ScatterPruning)
	// Headline: workers asked per kNN at the largest cluster, broadcast
	// (second-to-last row) vs pruned (last row).
	b.ReportMetric(cell(tbl, len(tbl.Rows)-2, 2), "broadcast-asked/knn")
	b.ReportMetric(cell(tbl, len(tbl.Rows)-1, 2), "pruned-asked/knn")
}

func BenchmarkR17TieredStorage(b *testing.B) {
	tbl := runExperiment(b, bench.R17TieredStorage)
	// Headline: retention multiplier and sealed bytes/observation at the
	// largest stream — the numbers the CI gate floors and ceilings.
	last := len(tbl.Rows) - 1
	b.ReportMetric(cell(tbl, last, 4), "retention-x")
	b.ReportMetric(cell(tbl, last, 3), "sealed-B/obs")
}

func BenchmarkR20CodecAlloc(b *testing.B) {
	tbl := runExperiment(b, bench.R20CodecAlloc)
	// Headline: pooled allocs/op for both hot-path messages (col 7) — the
	// numbers the CI gate holds under its absolute ceiling.
	b.ReportMetric(cell(tbl, 0, 7), "ingest-pooled-allocs/op")
	b.ReportMetric(cell(tbl, 1, 7), "range-pooled-allocs/op")
}

func BenchmarkR21Serving(b *testing.B) {
	tbl := runExperiment(b, bench.R21Serving)
	// Headline: shared-vs-per-sub delivery speedup and cache hit ratio on
	// the shared row (row 1) — the pair the serving-plane gate floors.
	if len(tbl.Rows) > 1 {
		if v, err := strconv.ParseFloat(tbl.Rows[1][5], 64); err == nil {
			b.ReportMetric(v, "shared-speedup-x")
		}
		if v, err := strconv.ParseFloat(tbl.Rows[1][6], 64); err == nil {
			b.ReportMetric(v, "cache-hit-ratio")
		}
	}
}

func BenchmarkR13Planner(b *testing.B) {
	tbl := runExperiment(b, bench.R13Planner)
	// Headline: forced-spatial slowdown relative to adaptive (row 0, col 4
	// like "142.2x") — parse the leading float.
	if len(tbl.Rows) > 0 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(tbl.Rows[0][4], "x"), 64)
		if err == nil {
			b.ReportMetric(v, "forced-spatial-slowdown")
		}
	}
}
