// Forensics: after-the-fact investigation over recorded observations. A day
// of traffic is simulated and indexed; an investigator then takes one
// appearance sample of a person of interest and (1) re-identifies their other
// sightings across every camera, (2) reconstructs their trajectory, and
// (3) finds who else was near them at a chosen moment.
//
//	go run ./examples/forensics
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"stcam"
)

func main() {
	ctx := context.Background()
	cl, err := stcam.NewLocalCluster(4, nil, stcam.Options{LostAfter: time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	// A 6×6 camera grid over a 1200 m campus.
	world := stcam.RectOf(0, 0, 1200, 1200)
	var cams []stcam.CameraInfo
	id := uint32(1)
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			cams = append(cams, stcam.CameraInfo{
				ID:      id,
				Pos:     stcam.Pt(float64(c)*200+100, float64(r)*200+100),
				HalfFOV: math.Pi,
				Range:   170,
			})
			id++
		}
	}
	if err := cl.Coordinator.AddCameras(ctx, cams, 60); err != nil {
		log.Fatal(err)
	}

	// Record 10 simulated minutes of pedestrian traffic.
	w, err := stcam.NewWorld(stcam.WorldConfig{
		World:       world,
		NumObjects:  25,
		Model:       &stcam.RandomWaypoint{World: world, MinSpeed: 1, MaxSpeed: 3},
		Seed:        7,
		FeatureDim:  64,
		RecordTruth: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	det := stcam.NewDetector(stcam.DetectorConfig{
		PosNoise:     1.0,
		FeatureNoise: 0.05,
		FalseNegRate: 0.1,
		FeatureDim:   64,
		Seed:         8,
	})
	ing := stcam.NewIngester(cl.Coordinator, cl.Transport)
	defer ing.Close()
	var probe stcam.Feature // the investigator's appearance sample
	var probeTime time.Time
	w.Run(600, cl.Coordinator.Network(), det, func(_ int, obs []stcam.Detection) {
		if _, err := ing.IngestDetections(ctx, obs); err != nil {
			log.Fatal(err)
		}
		for _, d := range obs {
			if d.TrueID == 13 && probe == nil {
				probe = d.Feature
				probeTime = d.Time
			}
		}
	})
	if probe == nil {
		log.Fatal("person of interest was never on camera")
	}
	fmt.Printf("indexed 10 minutes of traffic; probe sample captured at %s\n\n",
		probeTime.Format("15:04:05"))

	// 1. Re-identification sweep across all workers' feature logs.
	window := stcam.TimeWindow{From: stcam.SimStart, To: w.Now()}
	var hits []stcam.ResultRecord
	for _, wk := range cl.Workers {
		hits = append(hits, wk.ReidSearch(probe, window, 0.8)...)
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].Time.Before(hits[j].Time) })
	fmt.Printf("re-identification: %d sightings across the network\n", len(hits))
	camerasSeen := map[uint32]bool{}
	for _, h := range hits {
		camerasSeen[h.Camera] = true
	}
	fmt.Printf("  seen by %d distinct cameras\n\n", len(camerasSeen))

	// 2. Trajectory reconstruction from the sightings, validated against
	//    ground truth.
	var tr stcam.Trajectory
	for _, h := range hits {
		tr.Append(h.Time, h.Pos)
	}
	truth := w.Truth(13)
	var sumErr float64
	for _, tp := range tr.Points {
		gt, err := truth.At(tp.T)
		if err != nil {
			continue
		}
		sumErr += tp.P.Dist(gt)
	}
	fmt.Printf("trajectory: %d points, %.0f m path, mean error vs ground truth %.1f m\n\n",
		tr.Len(), tr.Length(), sumErr/float64(max(tr.Len(), 1)))

	// 3. Who was near the person of interest midway through the recording?
	mid := stcam.SimStart.Add(5 * time.Minute)
	pos, err := tr.At(mid)
	if err != nil {
		log.Fatal(err)
	}
	nearWindow := stcam.TimeWindow{From: mid.Add(-15 * time.Second), To: mid.Add(15 * time.Second)}
	nn, err := cl.Coordinator.KNN(ctx, pos, nearWindow, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observations within the ±15 s window around %s near %s:\n",
		mid.Format("15:04:05"), pos)
	others := map[uint64]float64{}
	for _, r := range nn {
		d := math.Sqrt(r.Dist2)
		if prev, ok := others[r.TargetID]; !ok || d < prev {
			others[r.TargetID] = d
		}
	}
	for tgt, d := range others {
		fmt.Printf("  target %d, closest approach %.0f m\n", tgt, d)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
