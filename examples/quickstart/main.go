// Quickstart: assemble an in-process cluster, register a small camera grid,
// ingest a handful of detections, and run the snapshot query repertoire.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"stcam"
)

func main() {
	ctx := context.Background()

	// 1. A cluster: one coordinator, three workers, in-process transport.
	cl, err := stcam.NewLocalCluster(3, nil, stcam.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	// 2. Register a 3×3 grid of omnidirectional cameras over a 900 m world.
	//    The coordinator partitions them spatially across the workers.
	var cams []stcam.CameraInfo
	id := uint32(1)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			cams = append(cams, stcam.CameraInfo{
				ID:      id,
				Pos:     stcam.Pt(float64(c)*300+150, float64(r)*300+150),
				HalfFOV: math.Pi,
				Range:   250,
			})
			id++
		}
	}
	if err := cl.Coordinator.AddCameras(ctx, cams, 50); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d cameras across %d workers\n", len(cams), len(cl.Workers))
	for node, n := range cl.Coordinator.Assignment().Counts() {
		fmt.Printf("  %s owns %d cameras\n", node, n)
	}

	// 3. Ingest detections: a vehicle driving diagonally through the world.
	ing := stcam.NewIngester(cl.Coordinator, cl.Transport)
	defer ing.Close()
	start := stcam.SimStart
	var dets []stcam.Detection
	for i := 0; i < 9; i++ {
		p := stcam.Pt(float64(i)*100+50, float64(i)*100+50)
		dets = append(dets, stcam.Detection{
			ObsID:  uint64(i + 1),
			Camera: stcam.CameraID(nearestCamera(cams, p)),
			Pos:    p,
			Time:   start.Add(time.Duration(i) * 10 * time.Second),
		})
	}
	accepted, err := ing.IngestDetections(ctx, dets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ningested %d observations\n", accepted)

	// 4. Queries.
	window := stcam.TimeWindow{From: start, To: start.Add(time.Hour)}

	recs, err := cl.Coordinator.Range(ctx, stcam.RectOf(0, 0, 450, 450), window, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrange query over the south-west quadrant: %d observations\n", len(recs))
	for _, r := range recs {
		fmt.Printf("  obs %d at %s seen by camera %d (%s)\n",
			r.ObsID, r.Pos, r.Camera, r.Time.Format("15:04:05"))
	}

	nn, err := cl.Coordinator.KNN(ctx, stcam.Pt(900, 900), window, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n3 nearest observations to the north-east corner:\n")
	for _, r := range nn {
		fmt.Printf("  obs %d at %s, %.0f m away\n", r.ObsID, r.Pos, math.Sqrt(r.Dist2))
	}

	count, err := cl.Coordinator.Count(ctx, stcam.RectOf(300, 300, 900, 900), window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncount in the inner region: %d\n", count)
}

// nearestCamera picks the camera whose mount point is closest to p.
func nearestCamera(cams []stcam.CameraInfo, p stcam.Point) uint32 {
	best, bestD := cams[0].ID, math.Inf(1)
	for _, c := range cams {
		if d := c.Pos.Dist(p); d < bestD {
			best, bestD = c.ID, d
		}
	}
	return best
}
