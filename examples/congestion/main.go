// Congestion: continuous region monitoring with threshold alerts. A standing
// count query watches a plaza; as hotspot-biased crowds ebb and flow, the
// query streams incremental (+/-) membership deltas and fires alerts when the
// occupancy crosses the configured threshold.
//
//	go run ./examples/congestion
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"stcam"
)

const crowdThreshold = 12

func main() {
	ctx := context.Background()
	cl, err := stcam.NewLocalCluster(3, nil, stcam.Options{LostAfter: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	world := stcam.RectOf(0, 0, 1000, 1000)
	plaza := stcam.RectOf(100, 100, 350, 350)

	// 5×5 camera grid.
	var cams []stcam.CameraInfo
	id := uint32(1)
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			cams = append(cams, stcam.CameraInfo{
				ID:      id,
				Pos:     stcam.Pt(float64(c)*200+100, float64(r)*200+100),
				HalfFOV: math.Pi,
				Range:   170,
			})
			id++
		}
	}
	if err := cl.Coordinator.AddCameras(ctx, cams, 60); err != nil {
		log.Fatal(err)
	}

	// Standing count query over the plaza with an occupancy threshold.
	queryID, updates, err := cl.Coordinator.InstallContinuous(ctx, stcam.ContinuousCount, plaza, crowdThreshold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("continuous count query %d installed over the plaza (threshold %d)\n\n",
		queryID, crowdThreshold)

	// Crowd drawn toward the plaza.
	w, err := stcam.NewWorld(stcam.WorldConfig{
		World:      world,
		NumObjects: 60,
		Model: &stcam.RandomWaypoint{
			World: world, MinSpeed: 2, MaxSpeed: 6,
			Hotspot: plaza, HotspotProb: 0.6, Pause: 20,
		},
		Seed:       11,
		FeatureDim: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	det := stcam.NewDetector(stcam.DetectorConfig{
		PosNoise:     1.0,
		FeatureNoise: 0.04,
		FeatureDim:   64,
		Seed:         12,
	})
	ing := stcam.NewIngester(cl.Coordinator, cl.Transport)
	defer ing.Close()

	alerted := false
	var peak int
	var deltas int
	w.Run(400, cl.Coordinator.Network(), det, func(tick int, obs []stcam.Detection) {
		if _, err := ing.IngestDetections(ctx, obs); err != nil {
			log.Fatal(err)
		}
		ing.Tick(ctx, w.Now())
		for {
			var u stcam.ContinuousUpdate
			select {
			case u = <-updates:
			default:
				return
			}
			deltas++
			if u.Count > peak {
				peak = u.Count
			}
			switch {
			case u.Count >= crowdThreshold && !alerted:
				alerted = true
				fmt.Printf("t=%3ds  ALERT: plaza occupancy reached %d (threshold %d)\n",
					tick, u.Count, crowdThreshold)
			case u.Count < crowdThreshold && alerted:
				alerted = false
				fmt.Printf("t=%3ds  clear: plaza occupancy back to %d\n", tick, u.Count)
			}
		}
	})

	fmt.Printf("\nrun complete: %d incremental updates, peak plaza occupancy %d\n", deltas, peak)

	// Cross-check the continuous answer against a snapshot of the last 10
	// seconds: distinct targets observed inside the plaza.
	window := stcam.TimeWindow{From: w.Now().Add(-10 * time.Second), To: w.Now()}
	recs, err := cl.Coordinator.Range(ctx, plaza, window, 0)
	if err != nil {
		log.Fatal(err)
	}
	distinct := map[uint64]bool{}
	for _, r := range recs {
		if r.TargetID != 0 {
			distinct[r.TargetID] = true
		}
	}
	fmt.Printf("snapshot check: %d distinct targets in the plaza over the final 10 s\n", len(distinct))

	// Density heatmap of the whole world over the last minute, 100 m cells.
	cells, err := cl.Coordinator.Heatmap(ctx,
		world, stcam.TimeWindow{From: w.Now().Add(-time.Minute), To: w.Now()}, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nobservation density, last 60 s (darker = busier):")
	printHeatmap(cells, 10, 10)

	if err := cl.Coordinator.RemoveContinuous(ctx, queryID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("query uninstalled")
}

// printHeatmap renders density cells as ASCII shades, north up.
func printHeatmap(cells []stcam.HeatCell, w, h int) {
	grid := make([][]int64, h)
	for i := range grid {
		grid[i] = make([]int64, w)
	}
	var maxN int64 = 1
	for _, c := range cells {
		if int(c.CX) >= 0 && int(c.CX) < w && int(c.CY) >= 0 && int(c.CY) < h {
			grid[c.CY][c.CX] = c.Count
			if c.Count > maxN {
				maxN = c.Count
			}
		}
	}
	shades := []byte(" .:-=+*#%@")
	for row := h - 1; row >= 0; row-- {
		line := make([]byte, w)
		for col := 0; col < w; col++ {
			idx := int(grid[row][col] * int64(len(shades)-1) / maxN)
			line[col] = shades[idx]
		}
		fmt.Printf("  |%s|\n", string(line))
	}
}
