// Citywatch: cross-camera tracking of a tagged vehicle through a simulated
// city. A road-grid world drives traffic past a camera deployment; one
// vehicle is flagged and tracked live across cameras and workers via
// vision-graph-scoped handoff, printing the pursuit trail.
//
//	go run ./examples/citywatch
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"stcam"
)

const (
	worldSide = 1600.0
	gridSide  = 8 // 64 cameras
	nVehicles = 40
	nTicks    = 240
)

func main() {
	ctx := context.Background()
	cl, err := stcam.NewLocalCluster(8, nil, stcam.Options{
		LostAfter: 3 * time.Second,
		PrimeTTL:  2 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	// Cameras watch the road intersections.
	world := stcam.RectOf(0, 0, worldSide, worldSide)
	var cams []stcam.CameraInfo
	id := uint32(1)
	block := worldSide / gridSide
	for r := 0; r < gridSide; r++ {
		for c := 0; c < gridSide; c++ {
			cams = append(cams, stcam.CameraInfo{
				ID:      id,
				Pos:     stcam.Pt(float64(c)*block+block/2, float64(r)*block+block/2),
				HalfFOV: math.Pi,
				Range:   block * 0.75,
			})
			id++
		}
	}
	if err := cl.Coordinator.AddCameras(ctx, cams, 60); err != nil {
		log.Fatal(err)
	}

	// City traffic on a Manhattan road grid.
	w, err := stcam.NewWorld(stcam.WorldConfig{
		World:      world,
		NumObjects: nVehicles,
		Model:      &stcam.RoadGrid{World: world, Spacing: block, MinSpeed: 8, MaxSpeed: 16},
		Seed:       42,
		FeatureDim: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	det := stcam.NewDetector(stcam.DetectorConfig{
		PosNoise:     1.5,
		FeatureNoise: 0.05,
		FalseNegRate: 0.05,
		FeatureDim:   64,
		Seed:         43,
	})
	camNet := cl.Coordinator.Network()
	ing := stcam.NewIngester(cl.Coordinator, cl.Transport)
	defer ing.Close()

	// Warm up a few ticks so the target is on camera, then flag vehicle 7.
	suspect := w.Object(7)
	var trackID uint64
	var updates <-chan stcam.TrackUpdate
	fmt.Println("tracking vehicle 7 through the city…")
	w.Run(nTicks, camNet, det, func(tick int, obs []stcam.Detection) {
		if _, err := ing.IngestDetections(ctx, obs); err != nil {
			log.Fatal(err)
		}
		ing.Tick(ctx, w.Now())
		if trackID == 0 {
			// Start the track from the suspect's first detection.
			for _, d := range obs {
				if d.TrueID == suspect.ID {
					trackID, updates, err = cl.Coordinator.StartTrack(ctx, uint32(d.Camera), d.Feature, d.Time)
					if err != nil {
						log.Fatal(err)
					}
					fmt.Printf("t=%3ds  track %d opened at camera %d\n",
						tick, trackID, d.Camera)
					break
				}
			}
		}
	})

	// Replay the pursuit trail.
	if trackID == 0 {
		log.Fatal("suspect never appeared on camera")
	}
	var lastCam uint32
	var sightings int
	var camTrail []uint32
	seen := map[uint32]bool{}
	for {
		var u stcam.TrackUpdate
		select {
		case u = <-updates:
		default:
			goto done
		}
		sightings++
		// Overlapping FOVs alternate rapidly; record each camera once, in
		// first-visit order, to show the route rather than the flicker.
		if u.Camera != lastCam && !seen[u.Camera] {
			camTrail = append(camTrail, u.Camera)
			seen[u.Camera] = true
		}
		lastCam = u.Camera
	}
done:
	fmt.Printf("\n%d sightings; cameras visited in order: %v\n", sightings, camTrail)
	owner, lastCamera, handoffs, ok := cl.Coordinator.TrackInfo(trackID)
	if !ok {
		log.Fatal("track lost entirely")
	}
	fmt.Printf("track now at camera %d, resident on worker %s, %d cross-worker handoffs\n",
		lastCamera, owner, handoffs)

	// Compare the tracked trail with ground truth: how close is the last
	// reported position to where vehicle 7 actually is?
	fmt.Printf("vehicle 7 ground truth now: %s\n", suspect.Pos)
	net := cl.Coordinator.Network()
	fmt.Printf("vision graph learned %d directed edges (avg degree %.1f)\n",
		net.EdgeCount(), net.AvgDegree())
}
