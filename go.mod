module stcam

go 1.22
